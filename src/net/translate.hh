/**
 * @file
 * serve::Response <-> wire::ResponseFrame translation.
 *
 * The wire layer (net/wire.hh) is deliberately standalone — pure
 * bytes, no serving types — so the protocol is testable without a
 * server. These helpers are the one bridge between the two
 * vocabularies, shared by the TCP front end (response out), the
 * client (response in) and the router (response through).
 *
 * The score crosses as its raw IEEE-754 bit pattern in both
 * directions, so translate(translate(x)) is byte-identical — the
 * property the remote determinism tests pin.
 */

#ifndef NSBENCH_NET_TRANSLATE_HH
#define NSBENCH_NET_TRANSLATE_HH

#include "net/wire.hh"
#include "serve/request.hh"

namespace nsbench::net
{

/** Encodes a completed serve::Response for request @p id. */
inline wire::ResponseFrame
toFrame(const serve::Response &response, uint64_t id)
{
    wire::ResponseFrame frame;
    frame.id = id;
    frame.status = static_cast<uint8_t>(response.status);
    frame.setScore(response.score);
    frame.latencySeconds = response.latencySeconds;
    frame.queueSeconds = response.queueSeconds;
    frame.serviceSeconds = response.serviceSeconds;
    frame.neuralSeconds = response.neuralSeconds;
    frame.symbolicSeconds = response.symbolicSeconds;
    frame.batchSize = static_cast<uint32_t>(
        response.batchSize < 0 ? 0 : response.batchSize);
    frame.shared = static_cast<uint32_t>(
        response.shared < 0 ? 0 : response.shared);
    frame.retries = static_cast<uint32_t>(
        response.retries < 0 ? 0 : response.retries);
    frame.flags = (response.cached ? wire::kFlagCached : 0u) |
                  (response.stale ? wire::kFlagStale : 0u) |
                  (response.pipelined ? wire::kFlagPipelined : 0u);
    return frame;
}

/**
 * Decodes a response frame back into a serve::Response. Unknown
 * status values (a newer peer) map to Failed rather than reading
 * out of the enum's range.
 */
inline serve::Response
toResponse(const wire::ResponseFrame &frame)
{
    serve::Response response;
    response.status =
        frame.status <= static_cast<uint8_t>(
                            serve::RequestStatus::Canceled)
            ? static_cast<serve::RequestStatus>(frame.status)
            : serve::RequestStatus::Failed;
    response.score = frame.score();
    response.latencySeconds = frame.latencySeconds;
    response.queueSeconds = frame.queueSeconds;
    response.serviceSeconds = frame.serviceSeconds;
    response.neuralSeconds = frame.neuralSeconds;
    response.symbolicSeconds = frame.symbolicSeconds;
    response.batchSize = static_cast<int>(frame.batchSize);
    response.shared = static_cast<int>(frame.shared);
    response.retries = static_cast<int>(frame.retries);
    response.cached = (frame.flags & wire::kFlagCached) != 0;
    response.stale = (frame.flags & wire::kFlagStale) != 0;
    response.pipelined = (frame.flags & wire::kFlagPipelined) != 0;
    return response;
}

} // namespace nsbench::net

#endif // NSBENCH_NET_TRANSLATE_HH
