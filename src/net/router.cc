#include "net/router.hh"

#include <algorithm>
#include <cstdlib>

#include "net/translate.hh"
#include "util/logging.hh"

namespace nsbench::net
{

namespace
{

using util::fatal;

/** FNV-1a 64 over arbitrary bytes, chainable via @p seed. */
uint64_t
fnv1a(const void *data, size_t size,
      uint64_t seed = 1469598103934665603ULL)
{
    const auto *bytes = static_cast<const uint8_t *>(data);
    uint64_t hash = seed;
    for (size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 1099511628211ULL;
    }
    return hash;
}

/** The placement key: (workload, modelSeed, episodeSeed). */
uint64_t
keyHash(const std::string &workload, uint64_t modelSeed,
        uint64_t episodeSeed)
{
    uint64_t hash = fnv1a(workload.data(), workload.size());
    hash = fnv1a(&modelSeed, sizeof(modelSeed), hash);
    hash = fnv1a(&episodeSeed, sizeof(episodeSeed), hash);
    return hash;
}

/** Splits "host:port"; dies on nonsense — a router with a bad
 *  backend list has nothing to route to. */
std::pair<std::string, uint16_t>
parseEndpoint(const std::string &endpoint)
{
    size_t colon = endpoint.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= endpoint.size())
        fatal("net: backend '" + endpoint + "' is not host:port");
    int port = std::atoi(endpoint.c_str() + colon + 1);
    if (port <= 0 || port > 65535)
        fatal("net: backend '" + endpoint + "' has a bad port");
    return {endpoint.substr(0, colon), static_cast<uint16_t>(port)};
}

} // namespace

Router::Router(const RouterOptions &options) : options_(options)
{
    if (options_.backends.empty())
        fatal("net: router needs at least one backend");

    for (size_t i = 0; i < options_.backends.size(); ++i) {
        auto [host, port] = parseEndpoint(options_.backends[i]);
        auto backend = std::make_unique<Backend>();
        backend->endpoint = options_.backends[i];
        ClientOptions client = options_.clientTemplate;
        client.host = host;
        client.port = port;
        client.connectAttempts = 1; // Fail fast; health cycle retries.
        backend->client = std::make_unique<Client>(client);
        backends_.push_back(std::move(backend));

        int points = std::max(1, options_.virtualNodes);
        for (int v = 0; v < points; ++v) {
            std::string point =
                options_.backends[i] + "#" + std::to_string(v);
            ring_.emplace_back(fnv1a(point.data(), point.size()), i);
        }
    }
    std::sort(ring_.begin(), ring_.end());

    frames_ = std::make_unique<FrameServer>(
        options_.listen,
        [this](const FrameServer::SessionPtr &session,
               const wire::RequestFrame &request) {
            handle(session, request);
        },
        metrics_);
}

Router::~Router()
{
    shutdown();
}

void
Router::shutdown()
{
    frames_->shutdown();
}

std::vector<size_t>
Router::candidatesFor(uint64_t hash) const
{
    std::vector<size_t> order;
    order.reserve(backends_.size());
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(),
        std::make_pair(hash, static_cast<size_t>(0)));
    for (size_t step = 0;
         step < ring_.size() && order.size() < backends_.size();
         ++step) {
        if (it == ring_.end())
            it = ring_.begin();
        size_t index = it->second;
        if (std::find(order.begin(), order.end(), index) ==
            order.end())
            order.push_back(index);
        ++it;
    }
    return order;
}

size_t
Router::shardOf(const std::string &workload, uint64_t modelSeed,
                uint64_t episodeSeed) const
{
    return candidatesFor(keyHash(workload, modelSeed, episodeSeed))
        .front();
}

bool
Router::eligible(Backend &backend) const
{
    if (backend.inflight.load(std::memory_order_relaxed) >=
        options_.maxInflightPerBackend) {
        backend.saturated.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    std::lock_guard<std::mutex> lock(backend.mu);
    if (!backend.down)
        return true;
    if (std::chrono::steady_clock::now() >= backend.retryAt) {
        backend.down = false; // Probe: the next submit redials.
        return true;
    }
    backend.failovers.fetch_add(1, std::memory_order_relaxed);
    return false;
}

void
Router::markDown(Backend &backend)
{
    std::lock_guard<std::mutex> lock(backend.mu);
    backend.down = true;
    backend.retryAt =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(
                options_.retryDownSeconds));
    backend.downMarks.fetch_add(1, std::memory_order_relaxed);
}

void
Router::handle(const FrameServer::SessionPtr &session,
               const wire::RequestFrame &request)
{
    uint64_t id = request.id;
    std::string workload = request.workload;

    serve::TimePoint deadline = serve::noDeadline();
    if (request.deadlineUs > 0)
        deadline = serve::ServeClock::now() +
                   std::chrono::microseconds(request.deadlineUs);

    uint64_t hash =
        keyHash(workload, request.modelSeed, request.episodeSeed);
    for (size_t index : candidatesFor(hash)) {
        Backend &backend = *backends_[index];
        if (!eligible(backend))
            continue;
        backend.inflight.fetch_add(1, std::memory_order_relaxed);
        serve::RequestStatus admitted = backend.client->submitSeeded(
            workload, request.episodeSeed, request.modelSeed,
            [this, session, id, workload,
             &backend](const serve::Response &response) {
                backend.inflight.fetch_sub(1,
                                           std::memory_order_relaxed);
                metrics_.recordOutcome(workload, response);
                session->respond(toFrame(response, id));
            },
            deadline);
        if (admitted == serve::RequestStatus::Ok) {
            backend.forwarded.fetch_add(1, std::memory_order_relaxed);
            metrics_.recordAdmitted(workload);
            return;
        }
        backend.inflight.fetch_sub(1, std::memory_order_relaxed);
        if (admitted == serve::RequestStatus::RejectedUnreachable) {
            markDown(backend);
            backend.failovers.fetch_add(1,
                                        std::memory_order_relaxed);
            continue; // Fail over to the next ring candidate.
        }
        // Any other rejection is the backend's verdict; relay it.
        metrics_.recordRejected(workload, admitted);
        wire::ResponseFrame reject;
        reject.id = id;
        reject.status = static_cast<uint8_t>(admitted);
        session->respond(reject);
        return;
    }

    // Every backend down or saturated: shed, never queue.
    metrics_.recordRejected(
        workload, serve::RequestStatus::RejectedUnreachable);
    wire::ResponseFrame shed;
    shed.id = id;
    shed.status = static_cast<uint8_t>(
        serve::RequestStatus::RejectedUnreachable);
    session->respond(shed);
}

std::vector<BackendStats>
Router::backendStats() const
{
    std::vector<BackendStats> out;
    out.reserve(backends_.size());
    for (const auto &backend : backends_) {
        BackendStats stats;
        stats.endpoint = backend->endpoint;
        {
            std::lock_guard<std::mutex> lock(backend->mu);
            stats.down = backend->down;
        }
        stats.inflight =
            backend->inflight.load(std::memory_order_relaxed);
        stats.forwarded =
            backend->forwarded.load(std::memory_order_relaxed);
        stats.failovers =
            backend->failovers.load(std::memory_order_relaxed);
        stats.saturated =
            backend->saturated.load(std::memory_order_relaxed);
        stats.downMarks =
            backend->downMarks.load(std::memory_order_relaxed);
        out.push_back(std::move(stats));
    }
    return out;
}

util::Table
Router::backendTable() const
{
    util::Table table({"backend", "state", "inflight", "forwarded",
                       "failovers", "saturated", "down marks"});
    for (const BackendStats &stats : backendStats())
        table.addRow({stats.endpoint, stats.down ? "down" : "up",
                      std::to_string(stats.inflight),
                      std::to_string(stats.forwarded),
                      std::to_string(stats.failovers),
                      std::to_string(stats.saturated),
                      std::to_string(stats.downMarks)});
    return table;
}

} // namespace nsbench::net
