#include "net/router.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "net/translate.hh"
#include "util/logging.hh"

namespace nsbench::net
{

namespace
{

using util::fatal;

/** FNV-1a 64 over arbitrary bytes, chainable via @p seed. */
uint64_t
fnv1a(const void *data, size_t size,
      uint64_t seed = 1469598103934665603ULL)
{
    const auto *bytes = static_cast<const uint8_t *>(data);
    uint64_t hash = seed;
    for (size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 1099511628211ULL;
    }
    return hash;
}

/** The placement key: (workload, modelSeed, episodeSeed). */
uint64_t
keyHash(const std::string &workload, uint64_t modelSeed,
        uint64_t episodeSeed)
{
    uint64_t hash = fnv1a(workload.data(), workload.size());
    hash = fnv1a(&modelSeed, sizeof(modelSeed), hash);
    hash = fnv1a(&episodeSeed, sizeof(episodeSeed), hash);
    return hash;
}

/** Splits "host:port"; dies on nonsense — a router with a bad
 *  backend list has nothing to route to. */
std::pair<std::string, uint16_t>
parseEndpoint(const std::string &endpoint)
{
    size_t colon = endpoint.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= endpoint.size())
        fatal("net: backend '" + endpoint + "' is not host:port");
    int port = std::atoi(endpoint.c_str() + colon + 1);
    if (port <= 0 || port > 65535)
        fatal("net: backend '" + endpoint + "' has a bad port");
    return {endpoint.substr(0, colon), static_cast<uint16_t>(port)};
}

/** Minimal JSON string escaping (endpoints are host:port, but stay
 *  correct if someone routes to a hostname with odd characters). */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

int64_t
Router::nowUs()
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

Router::Router(const RouterOptions &options) : options_(options)
{
    if (options_.backends.empty())
        fatal("net: router needs at least one backend");

    BreakerOptions breaker = options_.breaker;
    breaker.openSeconds = options_.retryDownSeconds;

    for (size_t i = 0; i < options_.backends.size(); ++i) {
        auto [host, port] = parseEndpoint(options_.backends[i]);
        auto backend = std::make_unique<Backend>(breaker);
        backend->endpoint = options_.backends[i];
        ClientOptions client = options_.clientTemplate;
        client.host = host;
        client.port = port;
        client.connectAttempts = 1; // Fail fast; the breaker retries.
        backend->client = std::make_unique<Client>(client);
        backends_.push_back(std::move(backend));

        int points = std::max(1, options_.virtualNodes);
        for (int v = 0; v < points; ++v) {
            std::string point =
                options_.backends[i] + "#" + std::to_string(v);
            ring_.emplace_back(fnv1a(point.data(), point.size()), i);
        }
    }
    std::sort(ring_.begin(), ring_.end());

    if (options_.hedging && backends_.size() > 1)
        hedgeThread_ = std::thread([this] { hedgeLoop(); });

    frames_ = std::make_unique<FrameServer>(
        options_.listen,
        [this](const FrameServer::SessionPtr &session,
               const wire::RequestFrame &request) {
            handle(session, request);
        },
        metrics_);
}

Router::~Router()
{
    shutdown();
}

void
Router::shutdown()
{
    frames_->shutdown();
    std::call_once(hedgeJoinOnce_, [this] {
        {
            std::lock_guard<std::mutex> lock(hedgeMu_);
            hedgeStop_ = true;
        }
        hedgeCv_.notify_all();
        if (hedgeThread_.joinable())
            hedgeThread_.join();
    });
}

std::vector<size_t>
Router::candidatesFor(uint64_t hash) const
{
    std::vector<size_t> order;
    order.reserve(backends_.size());
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(),
        std::make_pair(hash, static_cast<size_t>(0)));
    for (size_t step = 0;
         step < ring_.size() && order.size() < backends_.size();
         ++step) {
        if (it == ring_.end())
            it = ring_.begin();
        size_t index = it->second;
        if (std::find(order.begin(), order.end(), index) ==
            order.end())
            order.push_back(index);
        ++it;
    }
    return order;
}

size_t
Router::shardOf(const std::string &workload, uint64_t modelSeed,
                uint64_t episodeSeed) const
{
    return candidatesFor(keyHash(workload, modelSeed, episodeSeed))
        .front();
}

double
Router::referenceLatency(size_t self) const
{
    double best = 0.0;
    for (size_t i = 0; i < backends_.size(); ++i) {
        if (i == self)
            continue;
        BreakerSnapshot snap =
            backends_[i]->breaker.snapshot(nowUs());
        if (snap.samples == 0 || snap.latencySeconds <= 0.0)
            continue;
        if (best == 0.0 || snap.latencySeconds < best)
            best = snap.latencySeconds;
    }
    return best;
}

serve::RequestStatus
Router::sendTo(const RelayPtr &relay, size_t index, bool hedge)
{
    Backend &backend = *backends_[index];
    backend.inflight.fetch_add(1, std::memory_order_relaxed);

    auto attempt = std::make_shared<Attempt>();
    attempt->backend = index;
    attempt->hedge = hedge;
    auto sent_at = std::chrono::steady_clock::now();

    serve::RequestStatus admitted = backend.client->submitSeeded(
        relay->workload, relay->episodeSeed, relay->modelSeed,
        [this, relay, attempt,
         sent_at](const serve::Response &response) {
            complete(relay, attempt, sent_at, response);
        },
        relay->deadline, &attempt->wireId);

    if (admitted == serve::RequestStatus::Ok) {
        backend.forwarded.fetch_add(1, std::memory_order_relaxed);
        if (hedge) {
            backend.hedges.fetch_add(1, std::memory_order_relaxed);
            hedgesSent_.fetch_add(1, std::memory_order_relaxed);
        } else {
            primaryForwarded_.fetch_add(1,
                                        std::memory_order_relaxed);
        }
        {
            std::lock_guard<std::mutex> lock(relay->mu);
            relay->attempts.push_back(attempt);
        }
        // If another attempt answered while this one was being
        // written, the winner's loser sweep may have run before our
        // publish — prune our own orphan (no-op if already gone).
        if (relay->responded.load(std::memory_order_acquire) &&
            attempt->wireId != 0) {
            backend.client->cancel(attempt->wireId);
            backend.cancels.fetch_add(1, std::memory_order_relaxed);
            cancelsSent_.fetch_add(1, std::memory_order_relaxed);
        }
        return admitted;
    }

    backend.inflight.fetch_sub(1, std::memory_order_relaxed);
    if (admitted == serve::RequestStatus::RejectedUnreachable) {
        backend.breaker.onUnreachable(nowUs());
        backend.failovers.fetch_add(1, std::memory_order_relaxed);
    }
    return admitted;
}

void
Router::complete(const RelayPtr &relay,
                 const std::shared_ptr<Attempt> &attempt,
                 std::chrono::steady_clock::time_point sentAt,
                 const serve::Response &response)
{
    Backend &backend = *backends_[attempt->backend];
    backend.inflight.fetch_sub(1, std::memory_order_relaxed);

    double latency = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - sentAt)
                         .count();

    // Feed the breaker. Failed means the connection died under the
    // request; Canceled is our own doing and says nothing about
    // health; everything else is the backend answering — a health
    // signal whatever the verdict.
    if (response.status == serve::RequestStatus::Failed)
        backend.breaker.onFailure(nowUs());
    else if (response.status != serve::RequestStatus::Canceled)
        backend.breaker.onSuccess(
            latency, referenceLatency(attempt->backend), nowUs());

    if (response.status == serve::RequestStatus::Ok) {
        std::lock_guard<std::mutex> lock(latencyMu_);
        latency_.try_emplace(relay->workload, 0.95);
        latency_.at(relay->workload).add(latency);
    }

    // A Failed completion means the connection died under the
    // request. While untried ring candidates remain, re-issue there
    // instead of relaying the transport's bad luck to the client —
    // the determinism contract makes the retried answer identical.
    if (response.status == serve::RequestStatus::Failed &&
        !relay->responded.load(std::memory_order_acquire) &&
        retryElsewhere(relay, attempt->hedge)) {
        backend.failovers.fetch_add(1, std::memory_order_relaxed);
        return;
    }

    // First writer wins: exactly one attempt relays to the client.
    if (relay->responded.exchange(true, std::memory_order_acq_rel))
        return;

    if (attempt->hedge) {
        backend.hedgeWins.fetch_add(1, std::memory_order_relaxed);
        hedgesWon_.fetch_add(1, std::memory_order_relaxed);
    }
    metrics_.recordOutcome(relay->workload, response);
    relay->session->respond(toFrame(response, relay->id));
    cancelLosers(relay, attempt.get());
}

void
Router::cancelLosers(const RelayPtr &relay, const Attempt *winner)
{
    std::vector<std::pair<size_t, uint64_t>> losers;
    {
        std::lock_guard<std::mutex> lock(relay->mu);
        for (const auto &attempt : relay->attempts)
            if (attempt.get() != winner && attempt->wireId != 0)
                losers.emplace_back(attempt->backend,
                                    attempt->wireId);
    }
    for (const auto &[index, wire_id] : losers) {
        backends_[index]->client->cancel(wire_id);
        backends_[index]->cancels.fetch_add(
            1, std::memory_order_relaxed);
        cancelsSent_.fetch_add(1, std::memory_order_relaxed);
    }
}

void
Router::scheduleHedge(const RelayPtr &relay)
{
    if (!hedgeThread_.joinable())
        return; // Hedging off or single backend.
    if (relay->candidates.size() < 2)
        return;

    double delay = 0.0;
    {
        std::lock_guard<std::mutex> lock(latencyMu_);
        auto it = latency_.find(relay->workload);
        if (it == latency_.end() ||
            it->second.count() < options_.hedgeMinSamples)
            return; // p95 not trustworthy yet.
        delay = it->second.value();
    }
    delay = std::max(options_.hedgeMinDelaySeconds,
                     std::min(options_.hedgeMaxDelaySeconds, delay));

    HedgeEntry entry;
    entry.at = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<
                   std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(delay));
    entry.relay = relay;
    {
        std::lock_guard<std::mutex> lock(hedgeMu_);
        if (hedgeStop_)
            return;
        hedgeQueue_.push(std::move(entry));
    }
    hedgeCv_.notify_one();
}

void
Router::hedgeLoop()
{
    std::unique_lock<std::mutex> lock(hedgeMu_);
    while (!hedgeStop_) {
        if (hedgeQueue_.empty()) {
            hedgeCv_.wait(lock, [this] {
                return hedgeStop_ || !hedgeQueue_.empty();
            });
            continue;
        }
        auto now = std::chrono::steady_clock::now();
        if (hedgeQueue_.top().at > now) {
            hedgeCv_.wait_until(lock, hedgeQueue_.top().at);
            continue;
        }
        RelayPtr relay = hedgeQueue_.top().relay.lock();
        hedgeQueue_.pop();
        if (!relay ||
            relay->responded.load(std::memory_order_acquire))
            continue;
        lock.unlock(); // Never send while holding the timer lock.
        fireHedge(relay);
        lock.lock();
    }
}

bool
Router::retryElsewhere(const RelayPtr &relay, bool hedge)
{
    std::vector<size_t> tried;
    {
        std::lock_guard<std::mutex> lock(relay->mu);
        for (const auto &attempt : relay->attempts)
            tried.push_back(attempt->backend);
    }
    for (size_t index : relay->candidates) {
        if (std::find(tried.begin(), tried.end(), index) !=
            tried.end())
            continue;
        Backend &backend = *backends_[index];
        if (backend.inflight.load(std::memory_order_relaxed) >=
            options_.maxInflightPerBackend) {
            backend.saturated.fetch_add(1,
                                        std::memory_order_relaxed);
            continue;
        }
        if (!backend.breaker.allow(nowUs()))
            continue;
        if (sendTo(relay, index, hedge) ==
            serve::RequestStatus::Ok)
            return true;
    }
    return false;
}

void
Router::fireHedge(const RelayPtr &relay)
{
    // Budget: hedges may add at most hedgeBudget extra load on top
    // of primary forwards (with a floor of one so a cold router can
    // hedge at all).
    uint64_t primaries =
        primaryForwarded_.load(std::memory_order_relaxed);
    uint64_t allowed = std::max<uint64_t>(
        1, static_cast<uint64_t>(options_.hedgeBudget *
                                 static_cast<double>(primaries)));
    if (hedgesSent_.load(std::memory_order_relaxed) >= allowed) {
        hedgesDenied_.fetch_add(1, std::memory_order_relaxed);
        return;
    }

    retryElsewhere(relay, /*hedge=*/true);
}

void
Router::handle(const FrameServer::SessionPtr &session,
               const wire::RequestFrame &request)
{
    auto relay = std::make_shared<Relay>();
    relay->session = session;
    relay->id = request.id;
    relay->workload = request.workload;
    relay->episodeSeed = request.episodeSeed;
    relay->modelSeed = request.modelSeed;
    relay->deadline = serve::noDeadline();
    if (request.deadlineUs > 0)
        relay->deadline =
            serve::ServeClock::now() +
            std::chrono::microseconds(request.deadlineUs);
    relay->candidates = candidatesFor(keyHash(
        relay->workload, relay->modelSeed, relay->episodeSeed));

    for (size_t index : relay->candidates) {
        Backend &backend = *backends_[index];
        if (backend.inflight.load(std::memory_order_relaxed) >=
            options_.maxInflightPerBackend) {
            backend.saturated.fetch_add(1,
                                        std::memory_order_relaxed);
            continue;
        }
        if (!backend.breaker.allow(nowUs())) {
            backend.failovers.fetch_add(1,
                                        std::memory_order_relaxed);
            continue;
        }
        serve::RequestStatus admitted =
            sendTo(relay, index, /*hedge=*/false);
        if (admitted == serve::RequestStatus::Ok) {
            metrics_.recordAdmitted(relay->workload);
            scheduleHedge(relay);
            return;
        }
        if (admitted == serve::RequestStatus::RejectedUnreachable)
            continue; // Fed the breaker; next ring candidate.
        // Any other rejection is the backend's verdict; relay it.
        metrics_.recordRejected(relay->workload, admitted);
        wire::ResponseFrame reject;
        reject.id = relay->id;
        reject.status = static_cast<uint8_t>(admitted);
        session->respond(reject);
        return;
    }

    // Every backend open or saturated: shed, never queue.
    metrics_.recordRejected(
        relay->workload, serve::RequestStatus::RejectedUnreachable);
    wire::ResponseFrame shed;
    shed.id = relay->id;
    shed.status = static_cast<uint8_t>(
        serve::RequestStatus::RejectedUnreachable);
    session->respond(shed);
}

std::vector<BackendStats>
Router::backendStats() const
{
    std::vector<BackendStats> out;
    out.reserve(backends_.size());
    for (const auto &backend : backends_) {
        BackendStats stats;
        stats.endpoint = backend->endpoint;
        BreakerSnapshot snap = backend->breaker.snapshot(nowUs());
        stats.down = snap.state != BreakerState::Closed;
        stats.breakerState = breakerStateName(snap.state);
        stats.errorRate = snap.errorRate;
        stats.latencySeconds = snap.latencySeconds;
        stats.downMarks = snap.opens;
        stats.probes = snap.probes;
        stats.inflight =
            backend->inflight.load(std::memory_order_relaxed);
        stats.forwarded =
            backend->forwarded.load(std::memory_order_relaxed);
        stats.hedges =
            backend->hedges.load(std::memory_order_relaxed);
        stats.hedgeWins =
            backend->hedgeWins.load(std::memory_order_relaxed);
        stats.cancels =
            backend->cancels.load(std::memory_order_relaxed);
        stats.failovers =
            backend->failovers.load(std::memory_order_relaxed);
        stats.saturated =
            backend->saturated.load(std::memory_order_relaxed);
        out.push_back(std::move(stats));
    }
    return out;
}

HedgeStats
Router::hedgeStats() const
{
    HedgeStats stats;
    stats.hedgesSent = hedgesSent_.load(std::memory_order_relaxed);
    stats.hedgesWon = hedgesWon_.load(std::memory_order_relaxed);
    stats.hedgesDenied =
        hedgesDenied_.load(std::memory_order_relaxed);
    stats.cancelsSent =
        cancelsSent_.load(std::memory_order_relaxed);
    return stats;
}

util::Table
Router::backendTable() const
{
    util::Table table({"backend", "state", "inflight", "forwarded",
                       "hedges", "hedge wins", "cancels",
                       "failovers", "saturated", "trips",
                       "err ewma", "lat ewma"});
    for (const BackendStats &stats : backendStats())
        table.addRow(
            {stats.endpoint, stats.breakerState,
             std::to_string(stats.inflight),
             std::to_string(stats.forwarded),
             std::to_string(stats.hedges),
             std::to_string(stats.hedgeWins),
             std::to_string(stats.cancels),
             std::to_string(stats.failovers),
             std::to_string(stats.saturated),
             std::to_string(stats.downMarks),
             util::fixedStr(stats.errorRate, 3),
             util::fixedStr(stats.latencySeconds * 1e3, 3) + "ms"});
    return table;
}

std::string
Router::backendJson() const
{
    std::ostringstream json;
    json << "[";
    bool first = true;
    for (const BackendStats &stats : backendStats()) {
        if (!first)
            json << ",";
        first = false;
        json << "{\"endpoint\":\"" << jsonEscape(stats.endpoint)
             << "\",\"breaker\":\"" << stats.breakerState
             << "\",\"down\":" << (stats.down ? "true" : "false")
             << ",\"error_rate\":"
             << util::fixedStr(stats.errorRate, 4)
             << ",\"latency_ewma_seconds\":"
             << util::fixedStr(stats.latencySeconds, 6)
             << ",\"inflight\":" << stats.inflight
             << ",\"forwarded\":" << stats.forwarded
             << ",\"hedges\":" << stats.hedges
             << ",\"hedge_wins\":" << stats.hedgeWins
             << ",\"cancels\":" << stats.cancels
             << ",\"failovers\":" << stats.failovers
             << ",\"saturated\":" << stats.saturated
             << ",\"trips\":" << stats.downMarks
             << ",\"probes\":" << stats.probes << "}";
    }
    json << "]";
    return json.str();
}

} // namespace nsbench::net
