/**
 * @file
 * Per-backend circuit breaker for the sharded router.
 *
 * The router's original health model was binary — a backend was up,
 * or a failed submit marked it down for a fixed retry window. That
 * model cannot see the harder failure mode the tail-tolerance layer
 * targets: a backend that still answers every request, just 10x
 * slower than its peers, dragging the whole ring's p99 with it.
 *
 * The breaker is the classic three-state machine:
 *
 *   Closed    — traffic flows; every outcome feeds two EWMAs, the
 *               error rate and the completion latency. The breaker
 *               opens when the error EWMA crosses errorThreshold, or
 *               when its latency EWMA exceeds latencyFactor times a
 *               caller-supplied reference (the fleet-wide latency
 *               EWMA) — the slow-not-dead trigger. Both judgments
 *               wait for minSamples outcomes, so one cold-start
 *               hiccup cannot trip it.
 *   Open      — allow() refuses all traffic (the router routes around
 *               the backend) until openSeconds elapse.
 *   Half-open — allow() admits at most halfOpenProbes in-flight
 *               probes. A probe success at acceptable latency closes
 *               the breaker and resets its history (the backend
 *               re-earns trust from scratch); a probe failure — or a
 *               probe success still latencyFactor over the reference
 *               — reopens it for another openSeconds.
 *
 * Time is injected (microsecond timestamps chosen by the caller), so
 * unit tests drive the full state machine synthetically without
 * sleeping; the router feeds it the serve clock. Thread-safe.
 */

#ifndef NSBENCH_NET_BREAKER_HH
#define NSBENCH_NET_BREAKER_HH

#include <cstdint>
#include <mutex>

namespace nsbench::net
{

/** Breaker thresholds and timing. */
struct BreakerOptions
{
    /** Error-rate EWMA in [0,1] at which the breaker opens. */
    double errorThreshold = 0.5;
    /** Open when the latency EWMA exceeds this multiple of the
     *  reference latency (0 reference disables the latency trigger —
     *  e.g. a single-backend ring has no peers to compare against). */
    double latencyFactor = 3.0;
    /** Outcomes required before the EWMAs are trusted to trip. */
    uint64_t minSamples = 10;
    /** How long an open breaker blocks before probing. */
    double openSeconds = 1.0;
    /** Concurrent probe requests admitted while half-open. */
    int halfOpenProbes = 1;
    /** EWMA smoothing factor for error rate and latency. */
    double alpha = 0.125;
};

/** The breaker's position in its state machine. */
enum class BreakerState
{
    Closed,   ///< Healthy; traffic flows.
    Open,     ///< Tripped; all traffic refused until the timeout.
    HalfOpen, ///< Probing; a limited trickle decides reopen/close.
};

/** Short stable name for reports and JSON. */
const char *breakerStateName(BreakerState state);

/** Point-in-time breaker internals for reporting. */
struct BreakerSnapshot
{
    BreakerState state = BreakerState::Closed;
    double errorRate = 0.0;       ///< Error EWMA, [0, 1].
    double latencySeconds = 0.0;  ///< Latency EWMA of completions.
    uint64_t samples = 0;         ///< Outcomes since the last reset.
    uint64_t opens = 0;           ///< Times the breaker tripped.
    uint64_t probes = 0;          ///< Half-open probes admitted.
};

class CircuitBreaker
{
  public:
    explicit CircuitBreaker(const BreakerOptions &options = {});

    /**
     * Admission check at @p nowUs: true when a request may be sent.
     * Performs the Open -> HalfOpen transition when the open window
     * has elapsed, and counts the admitted probe while half-open.
     */
    bool allow(int64_t nowUs);

    /**
     * Feeds one successful completion that took @p latencySeconds.
     * @p referenceSeconds is the healthy-fleet latency scale (0 to
     * skip the latency judgment). May trip Closed -> Open on a slow
     * backend, or close/reopen a half-open one.
     */
    void onSuccess(double latencySeconds, double referenceSeconds,
                   int64_t nowUs);

    /** Feeds one failed request (an error on a live connection). */
    void onFailure(int64_t nowUs);

    /**
     * Feeds one hard connectivity failure (dial refused, dead
     * socket). Unlike onFailure this trips immediately regardless of
     * minSamples: a refused connection is not a statistical signal,
     * and waiting for an EWMA to agree just burns more requests on a
     * dead endpoint. Matches the old binary down-marking for the
     * backend-is-gone case.
     */
    void onUnreachable(int64_t nowUs);

    /** Current state, resolving a due Open -> HalfOpen transition. */
    BreakerState state(int64_t nowUs);

    /** Reporting snapshot (state resolved as in state()). */
    BreakerSnapshot snapshot(int64_t nowUs);

  private:
    /** Folds an outcome into the EWMAs (mu_ held). */
    void observe(bool failed, double latencySeconds);

    /** Trips to Open at @p nowUs (mu_ held). */
    void trip(int64_t nowUs);

    /** Resolves Open -> HalfOpen when due (mu_ held). */
    void maybeHalfOpen(int64_t nowUs);

    BreakerOptions options_;

    std::mutex mu_;
    BreakerState state_ = BreakerState::Closed;
    double errorEwma_ = 0.0;
    double latencyEwma_ = 0.0;
    uint64_t samples_ = 0;
    int64_t openedAtUs_ = 0;
    int probesInFlight_ = 0;
    uint64_t opens_ = 0;
    uint64_t probes_ = 0;
};

} // namespace nsbench::net

#endif // NSBENCH_NET_BREAKER_HH
