#include "net/tcp_server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "net/translate.hh"
#include "util/failpoint.hh"
#include "util/logging.hh"

namespace nsbench::net
{

namespace
{

using util::fatal;
using util::failpoints::sites::kNetAccept;
using util::failpoints::sites::kNetRead;
using util::failpoints::sites::kNetWrite;

/** Binds and listens a nonblocking IPv4 socket; dies on failure. */
int
listenSocket(const FrameServerOptions &options, uint16_t *boundPort)
{
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                      0);
    if (fd < 0)
        fatal(std::string("net: socket() failed: ") +
              std::strerror(errno));

    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options.port);
    const std::string &host =
        options.host == "localhost" ? "127.0.0.1" : options.host;
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        fatal("net: bad bind address '" + options.host +
              "' (IPv4 dotted quad expected)");
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) <
        0) {
        int err = errno;
        ::close(fd);
        fatal("net: bind(" + host + ":" +
              std::to_string(options.port) +
              ") failed: " + std::strerror(err));
    }
    if (::listen(fd, options.backlog) < 0) {
        int err = errno;
        ::close(fd);
        fatal(std::string("net: listen() failed: ") +
              std::strerror(err));
    }

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound), &len) ==
        0)
        *boundPort = ntohs(bound.sin_port);
    return fd;
}

} // namespace

void
FrameServer::Session::respond(const wire::ResponseFrame &frame)
{
    FrameServer *server = server_;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (inflight_ > 0)
            inflight_--;
        if (closed_)
            return;
        wire::encodeResponse(frame, &out_);
    }
    server->metrics_.recordNetFrameOut();
    server->requestFlush(shared_from_this());
}

FrameServer::FrameServer(const FrameServerOptions &options,
                         Handler handler,
                         serve::ServerMetrics &metrics,
                         CancelHandler cancelHandler)
    : options_(options), handler_(std::move(handler)),
      cancelHandler_(std::move(cancelHandler)), metrics_(metrics)
{
    listenFd_ = listenSocket(options_, &port_);

    epollFd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epollFd_ < 0)
        fatal(std::string("net: epoll_create1() failed: ") +
              std::strerror(errno));
    wakeFd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (wakeFd_ < 0)
        fatal(std::string("net: eventfd() failed: ") +
              std::strerror(errno));

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listenFd_;
    ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, listenFd_, &ev);
    ev.data.fd = wakeFd_;
    ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, wakeFd_, &ev);

    loopThread_ = std::thread([this] { loop(); });
}

FrameServer::~FrameServer()
{
    shutdown();
}

void
FrameServer::shutdown()
{
    std::call_once(shutdownOnce_, [this] {
        stopping_.store(true, std::memory_order_release);
        wake();
        if (loopThread_.joinable())
            loopThread_.join();
        if (epollFd_ >= 0)
            ::close(epollFd_);
        if (wakeFd_ >= 0)
            ::close(wakeFd_);
        epollFd_ = wakeFd_ = -1;
    });
}

void
FrameServer::wake()
{
    uint64_t one = 1;
    ssize_t n [[maybe_unused]] =
        ::write(wakeFd_, &one, sizeof(one));
}

void
FrameServer::requestFlush(const SessionPtr &session)
{
    {
        std::lock_guard<std::mutex> lock(flushMu_);
        flushQueue_.push_back(session);
    }
    wake();
}

bool
FrameServer::drained()
{
    for (auto &[fd, session] : sessions_) {
        std::lock_guard<std::mutex> lock(session->mu_);
        if (session->inflight_ > 0 ||
            session->outOffset_ < session->out_.size())
            return false;
    }
    return true;
}

void
FrameServer::loop()
{
    bool draining = false;
    std::chrono::steady_clock::time_point drainDeadline{};

    while (true) {
        if (stopping_.load(std::memory_order_acquire) && !draining) {
            draining = true;
            drainDeadline =
                std::chrono::steady_clock::now() +
                std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(
                        options_.drainSeconds));
            if (listenFd_ >= 0) {
                ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, listenFd_,
                            nullptr);
                ::close(listenFd_);
                listenFd_ = -1;
            }
        }
        if (draining) {
            drainFlushQueue();
            if (drained() ||
                std::chrono::steady_clock::now() >= drainDeadline)
                break;
        }

        epoll_event events[64];
        int n = ::epoll_wait(epollFd_, events, 64, draining ? 10 : -1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        for (int i = 0; i < n; ++i) {
            int fd = events[i].data.fd;
            if (fd == wakeFd_) {
                uint64_t count;
                while (::read(wakeFd_, &count, sizeof(count)) > 0) {
                }
                continue;
            }
            if (fd == listenFd_) {
                handleAccept();
                continue;
            }
            auto it = sessions_.find(fd);
            if (it == sessions_.end())
                continue;
            SessionPtr session = it->second;
            if (events[i].events & (EPOLLERR | EPOLLHUP)) {
                closeSession(session);
                continue;
            }
            if (events[i].events & EPOLLIN)
                handleReadable(session);
            // The read path may have closed the session.
            if ((events[i].events & EPOLLOUT) && sessions_.count(fd))
                handleWritable(session);
        }
        drainFlushQueue();
    }

    // Teardown: close whatever remains, flushed or not.
    std::vector<SessionPtr> remaining;
    remaining.reserve(sessions_.size());
    for (auto &[fd, session] : sessions_)
        remaining.push_back(session);
    for (const SessionPtr &session : remaining)
        closeSession(session);
}

void
FrameServer::handleAccept()
{
    while (true) {
        int fd = ::accept4(listenFd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return;
            if (errno == EINTR)
                continue;
            return;
        }
        metrics_.recordNetAccept();
        if (NSBENCH_FAILPOINT(kNetAccept)) {
            ::close(fd);
            metrics_.recordNetClose();
            continue;
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

        SessionPtr session(new Session(fd));
        session->server_ = this;
        sessions_[fd] = session;

        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev);
    }
}

void
FrameServer::handleReadable(const SessionPtr &session)
{
    if (NSBENCH_FAILPOINT(kNetRead)) {
        closeSession(session);
        return;
    }
    while (true) {
        uint8_t buf[4096];
        ssize_t n = ::recv(session->fd_, buf, sizeof(buf), 0);
        if (n > 0) {
            metrics_.recordNetBytesRead(static_cast<uint64_t>(n));
            session->in_.insert(session->in_.end(), buf, buf + n);
            continue;
        }
        if (n == 0) {
            closeSession(session);
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        closeSession(session);
        return;
    }

    // Decode every complete frame buffered so far.
    size_t offset = 0;
    while (offset < session->in_.size()) {
        wire::Frame frame;
        wire::DecodeResult result =
            wire::tryDecode(session->in_.data() + offset,
                            session->in_.size() - offset, &frame);
        if (result.status == wire::DecodeStatus::NeedMore)
            break;
        if (result.status == wire::DecodeStatus::Malformed) {
            metrics_.recordNetMalformed();
            closeSession(session);
            return;
        }
        offset += result.consumed;
        handleFrame(session, frame);
        // handleFrame closes on protocol violations; stop decoding
        // the rest of a dead connection's buffer.
        if (!sessions_.count(session->fd_))
            return;
    }
    if (offset > 0)
        session->in_.erase(session->in_.begin(),
                           session->in_.begin() +
                               static_cast<long>(offset));
}

void
FrameServer::handleFrame(const SessionPtr &session,
                         const wire::Frame &frame)
{
    if (!session->handshaken_) {
        if (frame.type != wire::FrameType::Hello ||
            frame.hello.magic != wire::kMagic ||
            frame.hello.version < wire::kMinVersion ||
            frame.hello.version > wire::kVersion) {
            metrics_.recordNetHandshakeFailure();
            closeSession(session);
            return;
        }
        // Negotiate down to the client's version: the ack names the
        // version this connection speaks, and version-gated frame
        // types (Cancel) are only accepted from peers that asked for
        // a version defining them.
        session->handshaken_ = true;
        session->version_ = frame.hello.version;
        {
            std::lock_guard<std::mutex> lock(session->mu_);
            wire::HelloFrame ack;
            ack.version = session->version_;
            wire::encodeHelloAck(ack, &session->out_);
        }
        metrics_.recordNetFrameOut();
        if (!flushSession(session))
            closeSession(session);
        else
            updateWriteInterest(session);
        return;
    }

    if (frame.type == wire::FrameType::Cancel &&
        session->version_ >= 2) {
        // Advisory: prune if possible, never acknowledge. Does not
        // touch the inflight accounting — the canceled request still
        // gets its response.
        metrics_.recordNetFrameIn();
        if (cancelHandler_)
            cancelHandler_(session, frame.cancel.id);
        return;
    }

    if (frame.type != wire::FrameType::Request) {
        // A handshaken client may only send requests (plus Cancel on
        // v2 connections); anything else is a protocol violation.
        metrics_.recordNetMalformed();
        closeSession(session);
        return;
    }

    metrics_.recordNetFrameIn();
    {
        std::lock_guard<std::mutex> lock(session->mu_);
        session->inflight_++;
    }
    if (stopping_.load(std::memory_order_acquire)) {
        wire::ResponseFrame reject;
        reject.id = frame.request.id;
        reject.status = static_cast<uint8_t>(
            serve::RequestStatus::RejectedShutdown);
        session->respond(reject);
        return;
    }
    handler_(session, frame.request);
}

bool
FrameServer::flushSession(const SessionPtr &session)
{
    std::lock_guard<std::mutex> lock(session->mu_);
    if (session->closed_)
        return true;
    while (session->outOffset_ < session->out_.size()) {
        if (NSBENCH_FAILPOINT(kNetWrite))
            return false;
        ssize_t n = ::send(
            session->fd_, session->out_.data() + session->outOffset_,
            session->out_.size() - session->outOffset_, MSG_NOSIGNAL);
        if (n > 0) {
            metrics_.recordNetBytesWritten(static_cast<uint64_t>(n));
            session->outOffset_ += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return true; // Kernel buffer full; EPOLLOUT resumes us.
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    session->out_.clear();
    session->outOffset_ = 0;
    return true;
}

void
FrameServer::updateWriteInterest(const SessionPtr &session)
{
    bool pending;
    {
        std::lock_guard<std::mutex> lock(session->mu_);
        if (session->closed_)
            return;
        pending = session->outOffset_ < session->out_.size();
    }
    epoll_event ev{};
    ev.events = EPOLLIN | (pending ? EPOLLOUT : 0u);
    ev.data.fd = session->fd_;
    ::epoll_ctl(epollFd_, EPOLL_CTL_MOD, session->fd_, &ev);
}

void
FrameServer::handleWritable(const SessionPtr &session)
{
    if (!flushSession(session)) {
        closeSession(session);
        return;
    }
    updateWriteInterest(session);
}

void
FrameServer::drainFlushQueue()
{
    std::vector<std::weak_ptr<Session>> queue;
    {
        std::lock_guard<std::mutex> lock(flushMu_);
        queue.swap(flushQueue_);
    }
    for (const std::weak_ptr<Session> &weak : queue) {
        SessionPtr session = weak.lock();
        if (!session)
            continue;
        {
            std::lock_guard<std::mutex> lock(session->mu_);
            if (session->closed_)
                continue;
        }
        if (!flushSession(session)) {
            closeSession(session);
            continue;
        }
        updateWriteInterest(session);
    }
}

void
FrameServer::closeSession(const SessionPtr &session)
{
    if (sessions_.erase(session->fd_) == 0)
        return; // Already closed.
    ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, session->fd_, nullptr);
    ::close(session->fd_);
    {
        std::lock_guard<std::mutex> lock(session->mu_);
        session->closed_ = true;
        session->out_.clear();
        session->outOffset_ = 0;
    }
    metrics_.recordNetClose();
}

TcpServer::TcpServer(serve::Server &server,
                     const FrameServerOptions &options)
    : server_(server), live_(std::make_shared<LiveRequests>())
{
    frames_ = std::make_unique<FrameServer>(
        options,
        [this](const FrameServer::SessionPtr &session,
               const wire::RequestFrame &request) {
            handle(session, request);
        },
        server.metrics(),
        [this](const FrameServer::SessionPtr &session, uint64_t id) {
            handleCancel(session, id);
        });
}

void
TcpServer::handleCancel(const FrameServer::SessionPtr &session,
                        uint64_t id)
{
    serve::CancelToken token;
    {
        std::lock_guard<std::mutex> lock(live_->mu);
        auto it = live_->tokens.find({session.get(), id});
        if (it != live_->tokens.end())
            token = it->second;
    }
    // Set outside the lock; the worker observes it at its next prune
    // and answers Canceled. Already-completed requests were erased by
    // their callback, making this the advertised no-op.
    if (token)
        token->store(true, std::memory_order_relaxed);
}

void
TcpServer::handle(const FrameServer::SessionPtr &session,
                  const wire::RequestFrame &request)
{
    uint64_t id = request.id;
    auto rejectWith = [&](serve::RequestStatus status) {
        wire::ResponseFrame reject;
        reject.id = id;
        reject.status = static_cast<uint8_t>(status);
        session->respond(reject);
    };

    // This server evaluates exactly one model snapshot; a request
    // pinned to a different model seed is a request for a workload
    // this process does not serve.
    if (request.modelSeed != 0 &&
        request.modelSeed != server_.options().modelSeed) {
        server_.metrics().recordRejected(
            request.workload,
            serve::RequestStatus::RejectedUnknownWorkload);
        rejectWith(serve::RequestStatus::RejectedUnknownWorkload);
        return;
    }

    serve::TimePoint deadline = serve::noDeadline();
    if (request.deadlineUs > 0)
        deadline = serve::ServeClock::now() +
                   std::chrono::microseconds(request.deadlineUs);

    // Register the cancel token before submitting so a Cancel frame
    // racing the submission can always find it; the completion
    // callback retires it (every admitted request completes, so no
    // entry outlives its request).
    auto key = std::make_pair(
        static_cast<const void *>(session.get()), id);
    auto token = std::make_shared<std::atomic<bool>>(false);
    std::shared_ptr<LiveRequests> live = live_;
    {
        std::lock_guard<std::mutex> lock(live->mu);
        live->tokens[key] = token;
    }
    serve::RequestStatus admitted = server_.submit(
        request.workload, request.episodeSeed,
        [live, session, id, key](const serve::Response &response) {
            {
                std::lock_guard<std::mutex> lock(live->mu);
                live->tokens.erase(key);
            }
            session->respond(toFrame(response, id));
        },
        deadline, token);
    if (admitted != serve::RequestStatus::Ok) {
        {
            std::lock_guard<std::mutex> lock(live->mu);
            live->tokens.erase(key);
        }
        rejectWith(admitted);
    }
}

} // namespace nsbench::net
