#include "vsa/resonator.hh"

#include "core/profiler.hh"
#include "util/logging.hh"
#include "vsa/ops.hh"

namespace nsbench::vsa
{

using tensor::Tensor;

namespace
{

/**
 * Projects a noisy estimate onto a codebook's span and re-binarizes:
 * sign(X^T (X v)) in resonator terms.
 */
Tensor
projectAndBinarize(const Codebook &book, const Tensor &estimate)
{
    // Similarity of the estimate to every atom...
    Tensor sims({book.entries()});
    {
        core::ScopedOp op("resonator_project",
                          core::OpCategory::MatMul);
        auto pa = book.matrix().data();
        auto pe = estimate.data();
        auto ps = sims.data();
        int64_t d = book.dim();
        for (int64_t e = 0; e < book.entries(); e++) {
            const float *row = &pa[static_cast<size_t>(e * d)];
            double acc = 0.0;
            for (int64_t i = 0; i < d; i++)
                acc += static_cast<double>(
                           pe[static_cast<size_t>(i)]) *
                       row[static_cast<size_t>(i)];
            ps[static_cast<size_t>(e)] = static_cast<float>(acc);
        }
        double touched = static_cast<double>(book.entries()) *
                         static_cast<double>(d);
        op.setFlops(2.0 * touched);
        op.setBytesRead((touched + static_cast<double>(d)) * 4.0);
        op.setBytesWritten(static_cast<double>(book.entries()) * 4.0);
    }

    // ...then the similarity-weighted recombination, binarized.
    core::ScopedOp op("resonator_recombine", core::OpCategory::MatMul);
    Tensor out({book.dim()});
    auto pa = book.matrix().data();
    auto ps = sims.data();
    auto po = out.data();
    int64_t d = book.dim();
    for (int64_t e = 0; e < book.entries(); e++) {
        float w = ps[static_cast<size_t>(e)];
        const float *row = &pa[static_cast<size_t>(e * d)];
        for (int64_t i = 0; i < d; i++)
            po[static_cast<size_t>(i)] +=
                w * row[static_cast<size_t>(i)];
    }
    for (int64_t i = 0; i < d; i++)
        po[static_cast<size_t>(i)] =
            po[static_cast<size_t>(i)] >= 0.0f ? 1.0f : -1.0f;
    double touched = static_cast<double>(book.entries()) *
                     static_cast<double>(d);
    op.setFlops(2.0 * touched + static_cast<double>(d));
    op.setBytesRead((touched + static_cast<double>(book.entries())) *
                    4.0);
    op.setBytesWritten(static_cast<double>(d) * 4.0);
    return out;
}

} // namespace

FactorizationResult
factorize(const tensor::Tensor &composite,
          const std::vector<const Codebook *> &books,
          int max_iterations)
{
    util::panicIf(books.empty(), "factorize: no codebooks");
    int64_t d = composite.size(0);
    for (const Codebook *book : books) {
        util::panicIf(book == nullptr, "factorize: null codebook");
        util::panicIf(book->dim() != d,
                      "factorize: codebook dimension mismatch");
    }

    size_t k = books.size();
    // Initialize each estimate to the superposition of its book.
    std::vector<Tensor> estimates;
    estimates.reserve(k);
    for (const Codebook *book : books) {
        std::vector<Tensor> atoms;
        atoms.reserve(static_cast<size_t>(book->entries()));
        for (int64_t e = 0; e < book->entries(); e++)
            atoms.push_back(book->atom(e));
        estimates.push_back(bundleMajority(atoms));
    }

    FactorizationResult result;
    for (int iter = 0; iter < max_iterations; iter++) {
        result.iterations = iter + 1;
        bool stable = true;
        for (size_t f = 0; f < k; f++) {
            // Unbind every other current estimate from the composite.
            Tensor residual = composite;
            for (size_t g = 0; g < k; g++) {
                if (g != f)
                    residual = unbind(residual, estimates[g]);
            }
            Tensor updated = projectAndBinarize(*books[f], residual);
            // Check movement before committing.
            if (hammingSimilarity(updated, estimates[f]) < 1.0f)
                stable = false;
            estimates[f] = std::move(updated);
        }
        if (stable) {
            result.converged = true;
            break;
        }
    }

    result.factors.reserve(k);
    for (size_t f = 0; f < k; f++)
        result.factors.push_back(
            books[f]->cleanup(estimates[f]).index);
    return result;
}

} // namespace nsbench::vsa
