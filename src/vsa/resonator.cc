#include "vsa/resonator.hh"

#include "core/profiler.hh"
#include "util/logging.hh"
#include "util/threadpool.hh"
#include "vsa/ops.hh"

namespace nsbench::vsa
{

using tensor::Tensor;

namespace
{

/**
 * Projects a noisy estimate onto a codebook's span and re-binarizes:
 * sign(X^T (X v)) in resonator terms.
 */
Tensor
projectAndBinarize(const Codebook &book, const Tensor &estimate)
{
    // Similarity of the estimate to every atom...
    Tensor sims({book.entries()});
    {
        core::ScopedOp op("resonator_project",
                          core::OpCategory::MatMul);
        auto pa = book.matrix().data();
        auto pe = estimate.data();
        auto ps = sims.data();
        int64_t d = book.dim();
        // Entry-parallel similarity sweep; per-entry dot products keep
        // serial order, so the projection is bit-identical.
        util::parallelFor(
            0, book.entries(),
            util::grainFor(2.0 * static_cast<double>(d)),
            [&](int64_t e0, int64_t e1) {
                for (int64_t e = e0; e < e1; e++) {
                    const float *row =
                        &pa[static_cast<size_t>(e * d)];
                    double acc = 0.0;
                    for (int64_t i = 0; i < d; i++)
                        acc += static_cast<double>(
                                   pe[static_cast<size_t>(i)]) *
                               row[static_cast<size_t>(i)];
                    ps[static_cast<size_t>(e)] =
                        static_cast<float>(acc);
                }
            });
        double touched = static_cast<double>(book.entries()) *
                         static_cast<double>(d);
        op.setFlops(2.0 * touched);
        op.setBytesRead((touched + static_cast<double>(d)) * 4.0);
        op.setBytesWritten(static_cast<double>(book.entries()) * 4.0);
    }

    // ...then the similarity-weighted recombination, binarized.
    core::ScopedOp op("resonator_recombine", core::OpCategory::MatMul);
    Tensor out({book.dim()});
    auto pa = book.matrix().data();
    auto ps = sims.data();
    auto po = out.data();
    int64_t d = book.dim();
    int64_t n = book.entries();
    // Dimension-sliced recombination: each output element accumulates
    // atoms in entry order (serial-identical), then binarizes in the
    // same pass.
    util::parallelFor(
        0, d, util::grainFor(2.0 * static_cast<double>(n)),
        [&](int64_t lo, int64_t hi) {
            for (int64_t e = 0; e < n; e++) {
                float w = ps[static_cast<size_t>(e)];
                const float *row = &pa[static_cast<size_t>(e * d)];
                for (int64_t i = lo; i < hi; i++)
                    po[static_cast<size_t>(i)] +=
                        w * row[static_cast<size_t>(i)];
            }
            for (int64_t i = lo; i < hi; i++)
                po[static_cast<size_t>(i)] =
                    po[static_cast<size_t>(i)] >= 0.0f ? 1.0f
                                                       : -1.0f;
        });
    double touched = static_cast<double>(book.entries()) *
                     static_cast<double>(d);
    op.setFlops(2.0 * touched + static_cast<double>(d));
    op.setBytesRead((touched + static_cast<double>(book.entries())) *
                    4.0);
    op.setBytesWritten(static_cast<double>(d) * 4.0);
    return out;
}

} // namespace

FactorizationResult
factorize(const tensor::Tensor &composite,
          const std::vector<const Codebook *> &books,
          int max_iterations)
{
    util::panicIf(books.empty(), "factorize: no codebooks");
    int64_t d = composite.size(0);
    for (const Codebook *book : books) {
        util::panicIf(book == nullptr, "factorize: null codebook");
        util::panicIf(book->dim() != d,
                      "factorize: codebook dimension mismatch");
    }

    size_t k = books.size();
    // Initialize each estimate to the superposition of its book.
    std::vector<Tensor> estimates;
    estimates.reserve(k);
    for (const Codebook *book : books) {
        std::vector<Tensor> atoms;
        atoms.reserve(static_cast<size_t>(book->entries()));
        for (int64_t e = 0; e < book->entries(); e++)
            atoms.push_back(book->atom(e));
        estimates.push_back(bundleMajority(atoms));
    }

    FactorizationResult result;
    for (int iter = 0; iter < max_iterations; iter++) {
        result.iterations = iter + 1;
        bool stable = true;
        for (size_t f = 0; f < k; f++) {
            // Unbind every other current estimate from the composite.
            Tensor residual = composite;
            for (size_t g = 0; g < k; g++) {
                if (g != f)
                    residual = unbind(residual, estimates[g]);
            }
            Tensor updated = projectAndBinarize(*books[f], residual);
            // Check movement before committing.
            if (hammingSimilarity(updated, estimates[f]) < 1.0f)
                stable = false;
            estimates[f] = std::move(updated);
        }
        if (stable) {
            result.converged = true;
            break;
        }
    }

    result.factors.reserve(k);
    for (size_t f = 0; f < k; f++)
        result.factors.push_back(
            books[f]->cleanup(estimates[f]).index);
    return result;
}

} // namespace nsbench::vsa
