#include "vsa/ops.hh"

#include <cmath>

#include "core/profiler.hh"
#include "util/logging.hh"
#include "util/simd.hh"
#include "util/threadpool.hh"
#include "vsa/fft.hh"

namespace nsbench::vsa
{

using core::OpCategory;
using core::ScopedOp;
using tensor::Tensor;

namespace
{

constexpr double elemBytes = sizeof(float);

void
checkSameDim(const char *name, const Tensor &a, const Tensor &b)
{
    util::panicIf(a.dim() != 1 || b.dim() != 1 ||
                      a.size(0) != b.size(0),
                  std::string(name) +
                      ": rank-1 equal-dimension hypervectors required");
}

} // namespace

Tensor
randomHypervector(int64_t dim, util::Rng &rng)
{
    util::panicIf(dim < 1, "randomHypervector: non-positive dimension");
    return Tensor::bipolar({dim}, rng);
}

Tensor
bind(const Tensor &a, const Tensor &b)
{
    checkSameDim("vsa_bind", a, b);
    ScopedOp op("vsa_bind", OpCategory::VectorElementwise);
    Tensor out = Tensor::uninitialized({a.size(0)});
    auto pa = a.data();
    auto pb = b.data();
    auto po = out.data();
    util::simd::mul(pa.data(), pb.data(), po.data(),
                    static_cast<int64_t>(pa.size()));
    auto n = static_cast<double>(a.numel());
    op.setFlops(n);
    op.setBytesRead(2.0 * n * elemBytes);
    op.setBytesWritten(n * elemBytes);
    return out;
}

Tensor
unbind(const Tensor &a, const Tensor &b)
{
    checkSameDim("vsa_unbind", a, b);
    ScopedOp op("vsa_unbind", OpCategory::VectorElementwise);
    Tensor out = Tensor::uninitialized({a.size(0)});
    auto pa = a.data();
    auto pb = b.data();
    auto po = out.data();
    util::simd::mul(pa.data(), pb.data(), po.data(),
                    static_cast<int64_t>(pa.size()));
    auto n = static_cast<double>(a.numel());
    op.setFlops(n);
    op.setBytesRead(2.0 * n * elemBytes);
    op.setBytesWritten(n * elemBytes);
    return out;
}

Tensor
bundle(const std::vector<Tensor> &vectors)
{
    util::panicIf(vectors.empty(), "vsa_bundle: no vectors");
    int64_t dim = vectors[0].size(0);
    for (const auto &v : vectors)
        checkSameDim("vsa_bundle", vectors[0], v);

    ScopedOp op("vsa_bundle", OpCategory::VectorElementwise);
    Tensor out({dim});
    auto po = out.data();
    // Dimension-sliced bundling: each output element sums the vectors
    // in their given order, exactly as the serial loop (bit-identical).
    util::parallelFor(
        0, dim,
        util::grainFor(static_cast<double>(vectors.size())),
        [&](int64_t lo, int64_t hi) {
            for (const auto &v : vectors) {
                auto pv = v.data();
                util::simd::accumulate(po.data() + lo,
                                       pv.data() + lo, hi - lo);
            }
        });
    double total = static_cast<double>(dim) *
                   static_cast<double>(vectors.size());
    op.setFlops(total);
    op.setBytesRead(total * elemBytes);
    op.setBytesWritten(static_cast<double>(dim) * elemBytes);
    return out;
}

Tensor
bundleMajority(const std::vector<Tensor> &vectors)
{
    Tensor sum = bundle(vectors);
    ScopedOp op("vsa_majority", OpCategory::VectorElementwise);
    auto ps = sum.data();
    // Threshold the bundle sum in place (exact self-aliasing is
    // allowed by the kernel contract); the sum is dead afterwards.
    util::simd::signBipolar(ps.data(), ps.data(),
                            static_cast<int64_t>(ps.size()));
    auto n = static_cast<double>(sum.numel());
    op.setFlops(n);
    op.setBytesRead(n * elemBytes);
    op.setBytesWritten(n * elemBytes);
    return sum;
}

Tensor
permuteShift(const Tensor &a, int64_t k)
{
    util::panicIf(a.dim() != 1, "vsa_permute: rank-1 required");
    ScopedOp op("vsa_permute", OpCategory::DataTransform);
    int64_t d = a.size(0);
    // The shift is a bijection: every output element is written once.
    Tensor out = Tensor::uninitialized({d});
    auto pa = a.data();
    auto po = out.data();
    int64_t shift = ((k % d) + d) % d;
    for (int64_t i = 0; i < d; i++)
        po[static_cast<size_t>((i + shift) % d)] =
            pa[static_cast<size_t>(i)];
    auto n = static_cast<double>(d);
    op.setBytesRead(n * elemBytes);
    op.setBytesWritten(n * elemBytes);
    return out;
}

Tensor
circularConvolve(const Tensor &a, const Tensor &b)
{
    checkSameDim("circular_conv", a, b);
    ScopedOp op("circular_conv", OpCategory::VectorElementwise);
    int64_t d = a.size(0);
    Tensor out = Tensor::uninitialized({d});
    auto pa = a.data();
    auto pb = b.data();
    auto po = out.data();
    // Output elements are independent dot products; parallel over i is
    // bit-identical to the serial schoolbook loop.
    util::parallelFor(
        0, d, util::grainFor(2.0 * static_cast<double>(d)),
        [&](int64_t i0, int64_t i1) {
            for (int64_t i = i0; i < i1; i++) {
                double acc = 0.0;
                for (int64_t j = 0; j < d; j++) {
                    acc += static_cast<double>(
                               pa[static_cast<size_t>(j)]) *
                           pb[static_cast<size_t>(
                               ((i - j) % d + d) % d)];
                }
                po[static_cast<size_t>(i)] =
                    static_cast<float>(acc);
            }
        });
    auto n = static_cast<double>(d);
    op.setFlops(2.0 * n * n);
    // Schoolbook form streams the full B vector per output element.
    op.setBytesRead((n + n * n) * elemBytes);
    op.setBytesWritten(n * elemBytes);
    return out;
}

Tensor
circularCorrelate(const Tensor &a, const Tensor &b)
{
    checkSameDim("circular_corr", a, b);
    ScopedOp op("circular_corr", OpCategory::VectorElementwise);
    int64_t d = a.size(0);
    Tensor out = Tensor::uninitialized({d});
    auto pa = a.data();
    auto pb = b.data();
    auto po = out.data();
    util::parallelFor(
        0, d, util::grainFor(2.0 * static_cast<double>(d)),
        [&](int64_t i0, int64_t i1) {
            for (int64_t i = i0; i < i1; i++) {
                double acc = 0.0;
                for (int64_t j = 0; j < d; j++) {
                    acc += static_cast<double>(
                               pa[static_cast<size_t>(j)]) *
                           pb[static_cast<size_t>((j + i) % d)];
                }
                po[static_cast<size_t>(i)] =
                    static_cast<float>(acc);
            }
        });
    auto n = static_cast<double>(d);
    op.setFlops(2.0 * n * n);
    op.setBytesRead((n + n * n) * elemBytes);
    op.setBytesWritten(n * elemBytes);
    return out;
}

Tensor
fftCircularConvolve(const Tensor &a, const Tensor &b)
{
    checkSameDim("fft_circular_conv", a, b);
    auto d = static_cast<size_t>(a.size(0));
    util::panicIf(!isPowerOfTwo(d),
                  "fft_circular_conv: dimension must be a power of 2");

    ScopedOp op("fft_circular_conv", OpCategory::VectorElementwise);
    std::vector<std::complex<double>> fa(d), fb(d);
    auto pa = a.data();
    auto pb = b.data();
    for (size_t i = 0; i < d; i++) {
        fa[i] = pa[i];
        fb[i] = pb[i];
    }
    fft(fa, false);
    fft(fb, false);
    for (size_t i = 0; i < d; i++)
        fa[i] *= fb[i];
    fft(fa, true);

    Tensor out = Tensor::uninitialized({static_cast<int64_t>(d)});
    auto po = out.data();
    for (size_t i = 0; i < d; i++)
        po[i] = static_cast<float>(fa[i].real());

    auto n = static_cast<double>(d);
    double logn = std::log2(n);
    op.setFlops(3.0 * 5.0 * n * logn + 6.0 * n);
    op.setBytesRead(2.0 * n * elemBytes);
    op.setBytesWritten(n * elemBytes);
    return out;
}

Tensor
unitaryVector(int64_t dim, util::Rng &rng)
{
    util::panicIf(!isPowerOfTwo(static_cast<size_t>(dim)),
                  "unitaryVector: dimension must be a power of 2");
    auto d = static_cast<size_t>(dim);
    // Random unit-magnitude spectrum with conjugate symmetry so the
    // time-domain signal is real.
    std::vector<std::complex<double>> spectrum(d);
    spectrum[0] = rng.bernoulli(0.5) ? 1.0 : -1.0;
    spectrum[d / 2] = rng.bernoulli(0.5) ? 1.0 : -1.0;
    for (size_t i = 1; i < d / 2; i++) {
        double theta = rng.uniformDouble(0.0, 2.0 * 3.14159265358979);
        spectrum[i] = {std::cos(theta), std::sin(theta)};
        spectrum[d - i] = std::conj(spectrum[i]);
    }
    fft(spectrum, true);
    // Unit-magnitude spectrum + Parseval gives a unit-L2 time-domain
    // vector, and convolution powers keep that norm exactly.
    Tensor out = Tensor::uninitialized({dim});
    auto po = out.data();
    for (size_t i = 0; i < d; i++)
        po[i] = static_cast<float>(spectrum[i].real());
    return out;
}

Tensor
convPower(const Tensor &base, int power)
{
    util::panicIf(base.dim() != 1, "convPower: rank-1 required");
    auto d = static_cast<size_t>(base.size(0));
    util::panicIf(!isPowerOfTwo(d),
                  "convPower: dimension must be a power of 2");

    core::ScopedOp op("vsa_conv_power",
                      core::OpCategory::VectorElementwise);
    std::vector<std::complex<double>> spectrum(d);
    auto pb = base.data();
    for (size_t i = 0; i < d; i++)
        spectrum[i] = pb[i];
    fft(spectrum, false);
    for (auto &c : spectrum) {
        double mag = std::abs(c);
        double phase = std::arg(c);
        double new_mag = std::pow(mag, power);
        double new_phase = phase * power;
        c = {new_mag * std::cos(new_phase),
             new_mag * std::sin(new_phase)};
    }
    fft(spectrum, true);
    Tensor out = Tensor::uninitialized({base.size(0)});
    auto po = out.data();
    for (size_t i = 0; i < d; i++)
        po[i] = static_cast<float>(spectrum[i].real());

    auto n = static_cast<double>(d);
    op.setFlops(2.0 * 5.0 * n * std::log2(n) + 8.0 * n);
    op.setBytesRead(n * elemBytes);
    op.setBytesWritten(n * elemBytes);
    return out;
}

float
cosineSimilarity(const Tensor &a, const Tensor &b)
{
    checkSameDim("vsa_cosine", a, b);
    ScopedOp op("vsa_cosine", OpCategory::VectorElementwise);
    auto pa = a.data();
    auto pb = b.data();
    double dot = 0.0, na = 0.0, nb = 0.0;
    util::simd::cosineChunk(pa.data(), pb.data(),
                            static_cast<int64_t>(pa.size()), &dot,
                            &na, &nb);
    auto n = static_cast<double>(a.numel());
    op.setFlops(6.0 * n);
    op.setBytesRead(2.0 * n * elemBytes);
    op.setBytesWritten(elemBytes);
    double denom = std::sqrt(na) * std::sqrt(nb);
    return denom > 0.0 ? static_cast<float>(dot / denom) : 0.0f;
}

float
hammingSimilarity(const Tensor &a, const Tensor &b)
{
    checkSameDim("vsa_hamming", a, b);
    ScopedOp op("vsa_hamming", OpCategory::VectorElementwise);
    auto pa = a.data();
    auto pb = b.data();
    // Sign agreement is a bit test: the SIMD backend reduces each
    // 8-lane block to a sign bitmask and popcounts it, which is exact.
    int64_t match = util::simd::signMatchChunk(
        pa.data(), pb.data(), static_cast<int64_t>(pa.size()));
    auto n = static_cast<double>(a.numel());
    op.setFlops(n);
    op.setBytesRead(2.0 * n * elemBytes);
    op.setBytesWritten(elemBytes);
    return static_cast<float>(match) / static_cast<float>(a.numel());
}

} // namespace nsbench::vsa
