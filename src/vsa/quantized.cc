#include "vsa/quantized.hh"

#include <algorithm>
#include <cmath>

#include "core/profiler.hh"
#include "util/logging.hh"

namespace nsbench::vsa
{

using tensor::Tensor;

QuantizedCodebook::QuantizedCodebook(const Codebook &source)
    : entries_(source.entries()), dim_(source.dim())
{
    atoms_.resize(static_cast<size_t>(entries_ * dim_));
    scales_.resize(static_cast<size_t>(entries_));
    norms_.resize(static_cast<size_t>(entries_));

    auto src = source.matrix().data();
    for (int64_t e = 0; e < entries_; e++) {
        const float *row = &src[static_cast<size_t>(e * dim_)];
        float max_abs = 0.0f;
        for (int64_t i = 0; i < dim_; i++)
            max_abs = std::max(max_abs, std::abs(row[i]));
        float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
        scales_[static_cast<size_t>(e)] = scale;

        double norm = 0.0;
        for (int64_t i = 0; i < dim_; i++) {
            auto q = static_cast<int8_t>(std::clamp(
                std::lround(row[i] / scale), -127L, 127L));
            atoms_[static_cast<size_t>(e * dim_ + i)] = q;
            double dq = static_cast<double>(q) * scale;
            norm += dq * dq;
        }
        norms_[static_cast<size_t>(e)] =
            static_cast<float>(std::sqrt(norm));
    }
}

CleanupResult
QuantizedCodebook::cleanup(const Tensor &hv) const
{
    util::panicIf(hv.dim() != 1 || hv.size(0) != dim_,
                  "QuantizedCodebook::cleanup: dimension mismatch");
    core::ScopedOp op("codebook_cleanup_int8",
                      core::OpCategory::MatMul);

    // Quantize the query symmetrically.
    auto ph = hv.data();
    float max_abs = 0.0f;
    for (float v : ph)
        max_abs = std::max(max_abs, std::abs(v));
    float q_scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
    std::vector<int8_t> query(static_cast<size_t>(dim_));
    double q_norm = 0.0;
    for (int64_t i = 0; i < dim_; i++) {
        auto q = static_cast<int8_t>(std::clamp(
            std::lround(ph[static_cast<size_t>(i)] / q_scale), -127L,
            127L));
        query[static_cast<size_t>(i)] = q;
        double dq = static_cast<double>(q) * q_scale;
        q_norm += dq * dq;
    }
    q_norm = std::sqrt(q_norm);

    CleanupResult best;
    for (int64_t e = 0; e < entries_; e++) {
        const int8_t *row = &atoms_[static_cast<size_t>(e * dim_)];
        int64_t acc = 0; // integer MAC accumulation
        for (int64_t i = 0; i < dim_; i++) {
            acc += static_cast<int64_t>(row[i]) *
                   query[static_cast<size_t>(i)];
        }
        double dot = static_cast<double>(acc) *
                     scales_[static_cast<size_t>(e)] * q_scale;
        double denom = q_norm * norms_[static_cast<size_t>(e)];
        double sim = denom > 0.0 ? dot / denom : 0.0;
        if (best.index < 0 || sim > best.similarity) {
            best.index = e;
            best.similarity = static_cast<float>(sim);
        }
    }

    double touched = static_cast<double>(entries_) *
                     static_cast<double>(dim_);
    op.setFlops(2.0 * touched);
    // INT8 atoms move a quarter of the FP32 bytes.
    op.setBytesRead(touched + static_cast<double>(dim_) * 4.0);
    op.setBytesWritten(8.0);
    return best;
}

Tensor
QuantizedCodebook::dequantizeAtom(int64_t index) const
{
    util::panicIf(index < 0 || index >= entries_,
                  "QuantizedCodebook::dequantizeAtom: out of range");
    Tensor out({dim_});
    float scale = scales_[static_cast<size_t>(index)];
    for (int64_t i = 0; i < dim_; i++) {
        out(i) = static_cast<float>(
                     atoms_[static_cast<size_t>(index * dim_ + i)]) *
                 scale;
    }
    return out;
}

} // namespace nsbench::vsa
