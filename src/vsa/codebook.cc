#include "vsa/codebook.hh"

#include <cmath>

#include <algorithm>
#include <vector>

#include "core/profiler.hh"
#include "core/sparsity.hh"
#include "util/logging.hh"
#include "util/simd.hh"
#include "util/threadpool.hh"

namespace nsbench::vsa
{

using core::OpCategory;
using core::ScopedOp;
using tensor::Tensor;

namespace
{
constexpr double elemBytes = sizeof(float);
} // namespace

Codebook::Codebook(int64_t entries, int64_t dim, util::Rng &rng)
{
    util::panicIf(entries < 1 || dim < 1,
                  "Codebook: non-positive size");
    atoms_ = Tensor::bipolar({entries, dim}, rng);
    norms_.assign(static_cast<size_t>(entries),
                  std::sqrt(static_cast<float>(dim)));
}

Codebook::Codebook(tensor::Tensor atoms) : atoms_(std::move(atoms))
{
    util::panicIf(atoms_.dim() != 2,
                  "Codebook: atom matrix must be rank-2");
    util::panicIf(atoms_.numel() == 0, "Codebook: non-positive size");
    int64_t n = entries();
    int64_t d = dim();
    norms_.resize(static_cast<size_t>(n));
    auto pa = atoms_.data();
    for (int64_t e = 0; e < n; e++) {
        double acc = 0.0;
        for (int64_t i = 0; i < d; i++) {
            float v = pa[static_cast<size_t>(e * d + i)];
            acc += static_cast<double>(v) * v;
        }
        norms_[static_cast<size_t>(e)] =
            static_cast<float>(std::sqrt(acc));
    }
}

Tensor
Codebook::atom(int64_t index) const
{
    util::panicIf(index < 0 || index >= entries(),
                  "Codebook::atom: index out of range");
    Tensor out = Tensor::uninitialized({dim()});
    auto src = atoms_.data();
    auto dst = out.data();
    auto d = static_cast<size_t>(dim());
    std::copy(&src[static_cast<size_t>(index) * d],
              &src[static_cast<size_t>(index + 1) * d], dst.begin());
    return out;
}

Tensor
Codebook::encodePmf(const Tensor &pmf, std::string_view stage,
                    float threshold) const
{
    util::panicIf(pmf.dim() != 1 || pmf.size(0) != entries(),
                  "Codebook::encodePmf: PMF length must equal entry "
                  "count");
    if (!stage.empty())
        core::recordSpanSparsity(stage, pmf.data(), threshold);

    ScopedOp op("pmf_to_vsa", OpCategory::VectorElementwise);
    int64_t d = dim();
    Tensor out({d});
    auto po = out.data();
    auto pw = pmf.data();
    auto pa = atoms_.data();

    int64_t n = entries();
    int64_t active = 0;
    for (int64_t e = 0; e < n; e++) {
        if (std::abs(pw[static_cast<size_t>(e)]) > threshold)
            active++;
    }

    // Parallel over dimension slices: every output element accumulates
    // the active atoms in entry order, exactly as the serial loop, so
    // the superposition is bit-identical at any thread count.
    util::parallelFor(
        0, d, util::grainFor(2.0 * static_cast<double>(active)),
        [&](int64_t lo, int64_t hi) {
            for (int64_t e = 0; e < n; e++) {
                float weight = pw[static_cast<size_t>(e)];
                if (std::abs(weight) <= threshold)
                    continue;
                const float *row = &pa[static_cast<size_t>(e * d)];
                util::simd::axpy(po.data() + lo, row + lo, weight,
                                 hi - lo);
            }
        });

    double touched = static_cast<double>(active) *
                     static_cast<double>(d);
    op.setFlops(2.0 * touched);
    op.setBytesRead(touched * elemBytes +
                    static_cast<double>(entries()) * elemBytes);
    op.setBytesWritten(static_cast<double>(d) * elemBytes);
    return out;
}

Tensor
Codebook::decodePmf(const Tensor &hv, std::string_view stage,
                    float threshold) const
{
    util::panicIf(hv.dim() != 1 || hv.size(0) != dim(),
                  "Codebook::decodePmf: dimension mismatch");
    ScopedOp op("vsa_to_pmf", OpCategory::VectorElementwise);

    int64_t n = entries();
    int64_t d = dim();
    // Every entry's similarity is stored unconditionally below.
    Tensor out = Tensor::uninitialized({n});
    auto po = out.data();
    auto ph = hv.data();
    auto pa = atoms_.data();

    double hv_norm = 0.0;
    for (int64_t i = 0; i < d; i++)
        hv_norm += static_cast<double>(ph[static_cast<size_t>(i)]) *
                   ph[static_cast<size_t>(i)];
    hv_norm = std::sqrt(hv_norm);

    // The O(n*d) similarity sweep is parallel over entries (each
    // entry's dot product keeps serial order: bit-identical); the
    // cheap O(n) renormalization stays serial in entry order.
    util::parallelFor(
        0, n, util::grainFor(2.0 * static_cast<double>(d)),
        [&](int64_t e0, int64_t e1) {
            for (int64_t e = e0; e < e1; e++) {
                const float *row = &pa[static_cast<size_t>(e * d)];
                double acc =
                    util::simd::dotChunk(ph.data(), row, d);
                double denom =
                    hv_norm * norms_[static_cast<size_t>(e)];
                double sim = denom > 0.0 ? acc / denom : 0.0;
                po[static_cast<size_t>(e)] =
                    sim > threshold ? static_cast<float>(sim) : 0.0f;
            }
        });
    double total = 0.0;
    for (int64_t e = 0; e < n; e++)
        total += po[static_cast<size_t>(e)];
    if (total > 0.0) {
        for (int64_t e = 0; e < n; e++)
            po[static_cast<size_t>(e)] /= static_cast<float>(total);
    }

    double touched = static_cast<double>(n) * static_cast<double>(d);
    op.setFlops(2.0 * touched + 2.0 * static_cast<double>(n));
    op.setBytesRead((touched + static_cast<double>(d)) * elemBytes);
    op.setBytesWritten(static_cast<double>(n) * elemBytes);

    if (!stage.empty()) {
        core::recordSpanSparsity(
            stage, std::span<const float>(out.data()));
    }
    return out;
}

CleanupResult
Codebook::cleanup(const Tensor &hv) const
{
    util::panicIf(hv.dim() != 1 || hv.size(0) != dim(),
                  "Codebook::cleanup: dimension mismatch");
    ScopedOp op("codebook_cleanup", OpCategory::MatMul);

    int64_t n = entries();
    int64_t d = dim();
    auto ph = hv.data();
    auto pa = atoms_.data();

    double hv_norm = 0.0;
    for (int64_t i = 0; i < d; i++)
        hv_norm += static_cast<double>(ph[static_cast<size_t>(i)]) *
                   ph[static_cast<size_t>(i)];
    hv_norm = std::sqrt(hv_norm);

    // Chunked nearest-neighbour sweep: each chunk finds its first
    // strict maximum (full double precision), chunks combine in index
    // order with a strict comparison. The winner is the earliest
    // global maximum — the serial rule — independent of thread count.
    struct PartialBest
    {
        int64_t index = -1;
        double similarity = 0.0;
    };
    int64_t grain =
        util::grainFor(2.0 * static_cast<double>(d));
    std::vector<PartialBest> partials(
        static_cast<size_t>((n + grain - 1) / grain));
    util::parallelFor(
        0, n, grain, [&](int64_t e0, int64_t e1) {
            PartialBest local;
            for (int64_t e = e0; e < e1; e++) {
                const float *row = &pa[static_cast<size_t>(e * d)];
                double acc =
                    util::simd::dotChunk(ph.data(), row, d);
                double denom =
                    hv_norm * norms_[static_cast<size_t>(e)];
                double sim = denom > 0.0 ? acc / denom : 0.0;
                if (local.index < 0 || sim > local.similarity) {
                    local.index = e;
                    local.similarity = sim;
                }
            }
            partials[static_cast<size_t>(e0 / grain)] = local;
        });

    PartialBest overall;
    for (const PartialBest &p : partials) {
        if (p.index >= 0 &&
            (overall.index < 0 || p.similarity > overall.similarity)) {
            overall = p;
        }
    }
    CleanupResult best;
    best.index = overall.index;
    best.similarity = static_cast<float>(overall.similarity);

    double touched = static_cast<double>(n) * static_cast<double>(d);
    op.setFlops(2.0 * touched);
    op.setBytesRead((touched + static_cast<double>(d)) * elemBytes);
    op.setBytesWritten(elemBytes);
    return best;
}

} // namespace nsbench::vsa
