#include "vsa/codebook.hh"

#include <cmath>

#include "core/profiler.hh"
#include "core/sparsity.hh"
#include "util/logging.hh"

namespace nsbench::vsa
{

using core::OpCategory;
using core::ScopedOp;
using tensor::Tensor;

namespace
{
constexpr double elemBytes = sizeof(float);
} // namespace

Codebook::Codebook(int64_t entries, int64_t dim, util::Rng &rng)
{
    util::panicIf(entries < 1 || dim < 1,
                  "Codebook: non-positive size");
    atoms_ = Tensor::bipolar({entries, dim}, rng);
    norms_.assign(static_cast<size_t>(entries),
                  std::sqrt(static_cast<float>(dim)));
}

Codebook::Codebook(tensor::Tensor atoms) : atoms_(std::move(atoms))
{
    util::panicIf(atoms_.dim() != 2,
                  "Codebook: atom matrix must be rank-2");
    util::panicIf(atoms_.numel() == 0, "Codebook: non-positive size");
    int64_t n = entries();
    int64_t d = dim();
    norms_.resize(static_cast<size_t>(n));
    auto pa = atoms_.data();
    for (int64_t e = 0; e < n; e++) {
        double acc = 0.0;
        for (int64_t i = 0; i < d; i++) {
            float v = pa[static_cast<size_t>(e * d + i)];
            acc += static_cast<double>(v) * v;
        }
        norms_[static_cast<size_t>(e)] =
            static_cast<float>(std::sqrt(acc));
    }
}

Tensor
Codebook::atom(int64_t index) const
{
    util::panicIf(index < 0 || index >= entries(),
                  "Codebook::atom: index out of range");
    Tensor out({dim()});
    auto src = atoms_.data();
    auto dst = out.data();
    auto d = static_cast<size_t>(dim());
    std::copy(&src[static_cast<size_t>(index) * d],
              &src[static_cast<size_t>(index + 1) * d], dst.begin());
    return out;
}

Tensor
Codebook::encodePmf(const Tensor &pmf, std::string_view stage,
                    float threshold) const
{
    util::panicIf(pmf.dim() != 1 || pmf.size(0) != entries(),
                  "Codebook::encodePmf: PMF length must equal entry "
                  "count");
    if (!stage.empty())
        core::recordSpanSparsity(stage, pmf.data(), threshold);

    ScopedOp op("pmf_to_vsa", OpCategory::VectorElementwise);
    int64_t d = dim();
    Tensor out({d});
    auto po = out.data();
    auto pw = pmf.data();
    auto pa = atoms_.data();

    int64_t active = 0;
    for (int64_t e = 0; e < entries(); e++) {
        float weight = pw[static_cast<size_t>(e)];
        if (std::abs(weight) <= threshold)
            continue;
        active++;
        const float *row = &pa[static_cast<size_t>(e * d)];
        for (int64_t i = 0; i < d; i++)
            po[static_cast<size_t>(i)] +=
                weight * row[static_cast<size_t>(i)];
    }

    double touched = static_cast<double>(active) *
                     static_cast<double>(d);
    op.setFlops(2.0 * touched);
    op.setBytesRead(touched * elemBytes +
                    static_cast<double>(entries()) * elemBytes);
    op.setBytesWritten(static_cast<double>(d) * elemBytes);
    return out;
}

Tensor
Codebook::decodePmf(const Tensor &hv, std::string_view stage,
                    float threshold) const
{
    util::panicIf(hv.dim() != 1 || hv.size(0) != dim(),
                  "Codebook::decodePmf: dimension mismatch");
    ScopedOp op("vsa_to_pmf", OpCategory::VectorElementwise);

    int64_t n = entries();
    int64_t d = dim();
    Tensor out({n});
    auto po = out.data();
    auto ph = hv.data();
    auto pa = atoms_.data();

    double hv_norm = 0.0;
    for (int64_t i = 0; i < d; i++)
        hv_norm += static_cast<double>(ph[static_cast<size_t>(i)]) *
                   ph[static_cast<size_t>(i)];
    hv_norm = std::sqrt(hv_norm);

    double total = 0.0;
    for (int64_t e = 0; e < n; e++) {
        const float *row = &pa[static_cast<size_t>(e * d)];
        double acc = 0.0;
        for (int64_t i = 0; i < d; i++)
            acc += static_cast<double>(ph[static_cast<size_t>(i)]) *
                   row[static_cast<size_t>(i)];
        double denom = hv_norm * norms_[static_cast<size_t>(e)];
        double sim = denom > 0.0 ? acc / denom : 0.0;
        float clamped = sim > threshold
                            ? static_cast<float>(sim)
                            : 0.0f;
        po[static_cast<size_t>(e)] = clamped;
        total += clamped;
    }
    if (total > 0.0) {
        for (int64_t e = 0; e < n; e++)
            po[static_cast<size_t>(e)] /= static_cast<float>(total);
    }

    double touched = static_cast<double>(n) * static_cast<double>(d);
    op.setFlops(2.0 * touched + 2.0 * static_cast<double>(n));
    op.setBytesRead((touched + static_cast<double>(d)) * elemBytes);
    op.setBytesWritten(static_cast<double>(n) * elemBytes);

    if (!stage.empty()) {
        core::recordSpanSparsity(
            stage, std::span<const float>(out.data()));
    }
    return out;
}

CleanupResult
Codebook::cleanup(const Tensor &hv) const
{
    util::panicIf(hv.dim() != 1 || hv.size(0) != dim(),
                  "Codebook::cleanup: dimension mismatch");
    ScopedOp op("codebook_cleanup", OpCategory::MatMul);

    int64_t n = entries();
    int64_t d = dim();
    auto ph = hv.data();
    auto pa = atoms_.data();

    double hv_norm = 0.0;
    for (int64_t i = 0; i < d; i++)
        hv_norm += static_cast<double>(ph[static_cast<size_t>(i)]) *
                   ph[static_cast<size_t>(i)];
    hv_norm = std::sqrt(hv_norm);

    CleanupResult best;
    for (int64_t e = 0; e < n; e++) {
        const float *row = &pa[static_cast<size_t>(e * d)];
        double acc = 0.0;
        for (int64_t i = 0; i < d; i++)
            acc += static_cast<double>(ph[static_cast<size_t>(i)]) *
                   row[static_cast<size_t>(i)];
        double denom = hv_norm * norms_[static_cast<size_t>(e)];
        double sim = denom > 0.0 ? acc / denom : 0.0;
        if (best.index < 0 || sim > best.similarity) {
            best.index = e;
            best.similarity = static_cast<float>(sim);
        }
    }

    double touched = static_cast<double>(n) * static_cast<double>(d);
    op.setFlops(2.0 * touched);
    op.setBytesRead((touched + static_cast<double>(d)) * elemBytes);
    op.setBytesWritten(elemBytes);
    return best;
}

} // namespace nsbench::vsa
