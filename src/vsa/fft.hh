/**
 * @file
 * Minimal radix-2 FFT used by the fast circular-convolution path.
 */

#ifndef NSBENCH_VSA_FFT_HH
#define NSBENCH_VSA_FFT_HH

#include <complex>
#include <vector>

namespace nsbench::vsa
{

/** True when n is a power of two (and positive). */
bool isPowerOfTwo(size_t n);

/**
 * In-place iterative radix-2 FFT. The length must be a power of two.
 * @param values Signal, replaced by its spectrum.
 * @param inverse Run the inverse transform (including 1/n scaling).
 */
void fft(std::vector<std::complex<double>> &values, bool inverse);

} // namespace nsbench::vsa

#endif // NSBENCH_VSA_FFT_HH
