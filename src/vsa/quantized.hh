/**
 * @file
 * INT8-quantized codebook (the paper's Recommendation 3).
 *
 * The paper recommends model compression — quantization in
 * particular — to shrink the codebooks that dominate NVSA-class
 * memory footprints. Cleanup over random-ish hypervectors is
 * extremely quantization-tolerant (similarity search only needs the
 * sign structure), so an 8-bit codebook keeps accuracy while cutting
 * the footprint 4x and, on real hardware, the bandwidth pressure of
 * the memory-bound symbolic phase with it.
 */

#ifndef NSBENCH_VSA_QUANTIZED_HH
#define NSBENCH_VSA_QUANTIZED_HH

#include <cstdint>
#include <vector>

#include "vsa/codebook.hh"

namespace nsbench::vsa
{

/**
 * An 8-bit copy of a codebook with symmetric per-atom scales.
 */
class QuantizedCodebook
{
  public:
    /** Quantizes every atom of @p source at 8 bits. */
    explicit QuantizedCodebook(const Codebook &source);

    /** Number of atoms. */
    int64_t entries() const { return entries_; }

    /** Hypervector dimension. */
    int64_t dim() const { return dim_; }

    /**
     * Nearest atom by (quantized) cosine similarity. The query is
     * quantized symmetrically on the fly; accumulation is integer,
     * as an INT8 MAC array would do it.
     */
    CleanupResult cleanup(const tensor::Tensor &hv) const;

    /** Storage footprint: one byte per element plus scales. */
    uint64_t
    bytes() const
    {
        return static_cast<uint64_t>(entries_) *
                   static_cast<uint64_t>(dim_) +
               static_cast<uint64_t>(entries_) * sizeof(float);
    }

    /** Dequantized copy of one atom (for inspection/tests). */
    tensor::Tensor dequantizeAtom(int64_t index) const;

  private:
    int64_t entries_ = 0;
    int64_t dim_ = 0;
    std::vector<int8_t> atoms_;   ///< entries x dim, row-major.
    std::vector<float> scales_;   ///< Per-atom dequantization scale.
    std::vector<float> norms_;    ///< Per-atom dequantized L2 norm.
};

} // namespace nsbench::vsa

#endif // NSBENCH_VSA_QUANTIZED_HH
