/**
 * @file
 * Vector-symbolic architecture primitives.
 *
 * Hypervectors are rank-1 tensors. Bipolar (+1/-1) vectors use
 * Hadamard binding (self-inverse); real-valued holographic vectors use
 * circular convolution binding with circular correlation as the
 * approximate inverse — the operations the paper attributes to NVSA,
 * VSAIT and PrAE's symbolic backends. Each primitive is instrumented
 * under its own operator name so the Fig. 3a breakdown separates
 * binding, bundling, permutation and cleanup traffic.
 */

#ifndef NSBENCH_VSA_OPS_HH
#define NSBENCH_VSA_OPS_HH

#include <cstdint>
#include <vector>

#include "tensor/tensor.hh"
#include "util/rng.hh"

namespace nsbench::vsa
{

/** Draws a random bipolar hypervector of the given dimension. */
tensor::Tensor randomHypervector(int64_t dim, util::Rng &rng);

/** Hadamard binding; self-inverse for bipolar vectors. */
tensor::Tensor bind(const tensor::Tensor &a, const tensor::Tensor &b);

/**
 * Hadamard unbinding. For bipolar vectors this equals bind(); kept
 * distinct so the profiler separates bind and unbind traffic the way
 * VSAIT's pipeline does.
 */
tensor::Tensor unbind(const tensor::Tensor &a, const tensor::Tensor &b);

/** Element-wise sum of hypervectors (superposition). */
tensor::Tensor bundle(const std::vector<tensor::Tensor> &vectors);

/**
 * Majority-rule bundling: the sign of the element-wise sum, ties
 * broken toward +1. Keeps the result bipolar.
 */
tensor::Tensor bundleMajority(const std::vector<tensor::Tensor> &vectors);

/** Cyclic right-shift by k positions (the VSA permutation op). */
tensor::Tensor permuteShift(const tensor::Tensor &a, int64_t k);

/**
 * Circular convolution binding (HRR), naive O(d^2) schoolbook form —
 * the shape of compute the paper calls out as memory-streaming-heavy.
 */
tensor::Tensor circularConvolve(const tensor::Tensor &a,
                                const tensor::Tensor &b);

/** Circular correlation, the approximate inverse of HRR binding. */
tensor::Tensor circularCorrelate(const tensor::Tensor &a,
                                 const tensor::Tensor &b);

/**
 * FFT-based circular convolution, O(d log d). Requires a power-of-two
 * dimension. The ablation bench contrasts this with the naive path.
 */
tensor::Tensor fftCircularConvolve(const tensor::Tensor &a,
                                   const tensor::Tensor &b);

/**
 * Random unitary hypervector: every spectral coefficient has unit
 * magnitude, so circular-convolution powers preserve the L2 norm and
 * circular correlation is an exact inverse. Requires a power-of-two
 * dimension. This is the fractional-power-encoding base NVSA-style
 * frontends use for ordered attribute values.
 */
tensor::Tensor unitaryVector(int64_t dim, util::Rng &rng);

/**
 * The k-th circular-convolution power of a unitary base vector,
 * computed spectrally (k may be negative or zero; power 0 is the
 * convolution identity).
 */
tensor::Tensor convPower(const tensor::Tensor &base, int power);

/** Cosine similarity of two hypervectors, in [-1, 1]. */
float cosineSimilarity(const tensor::Tensor &a, const tensor::Tensor &b);

/**
 * Normalized Hamming similarity of two bipolar vectors: the fraction
 * of positions with matching sign, in [0, 1].
 */
float hammingSimilarity(const tensor::Tensor &a,
                        const tensor::Tensor &b);

} // namespace nsbench::vsa

#endif // NSBENCH_VSA_OPS_HH
