/**
 * @file
 * Codebooks and cleanup memory for vector-symbolic reasoning.
 *
 * A codebook maps discrete symbols (attribute values, object
 * combinations) to quasi-orthogonal bipolar hypervectors. The
 * PMF<->VSA transforms implemented here are the NVSA symbolic stages
 * whose sparsity the paper reports in Fig. 5, and the codebook storage
 * is the ">90% memory footprint" component of Takeaway 4.
 */

#ifndef NSBENCH_VSA_CODEBOOK_HH
#define NSBENCH_VSA_CODEBOOK_HH

#include <cstdint>
#include <string_view>
#include <vector>

#include "tensor/tensor.hh"
#include "util/rng.hh"

namespace nsbench::vsa
{

/** Result of a cleanup-memory lookup. */
struct CleanupResult
{
    int64_t index = -1;     ///< Best-matching atom.
    float similarity = 0.0; ///< Cosine similarity of the match.
};

/**
 * A table of random bipolar atoms with PMF encode/decode transforms.
 */
class Codebook
{
  public:
    /**
     * Draws @p entries random bipolar atoms of dimension @p dim.
     */
    Codebook(int64_t entries, int64_t dim, util::Rng &rng);

    /**
     * Wraps an explicit [entries, dim] atom matrix (e.g. structured
     * fractional-power atoms). Atoms should be unit-L2-normalized;
     * decode/cleanup similarities assume a common atom norm.
     */
    explicit Codebook(tensor::Tensor atoms);

    /** Number of atoms. */
    int64_t entries() const { return atoms_.size(0); }

    /** Hypervector dimension. */
    int64_t dim() const { return atoms_.size(1); }

    /** Copy of one atom as a rank-1 tensor. */
    tensor::Tensor atom(int64_t index) const;

    /** The full [entries, dim] atom matrix. */
    const tensor::Tensor &matrix() const { return atoms_; }

    /**
     * PMF-to-VSA transform: the probability-weighted superposition of
     * atoms. Entries below @p threshold are skipped (the unstructured
     * sparsity NVSA exploits); when @p stage is non-empty the PMF's
     * zero fraction at that threshold is recorded on the profiler.
     *
     * @param pmf Rank-1 probability vector over the atoms.
     */
    tensor::Tensor encodePmf(const tensor::Tensor &pmf,
                             std::string_view stage = {},
                             float threshold = 1e-6f) const;

    /**
     * VSA-to-PMF transform: cosine similarity of @p hv against every
     * atom, negatives and values below @p threshold clamped to zero,
     * renormalized to sum to one. When @p stage is non-empty the
     * result's sparsity is recorded.
     */
    tensor::Tensor decodePmf(const tensor::Tensor &hv,
                             std::string_view stage = {},
                             float threshold = 0.0f) const;

    /** Nearest atom by cosine similarity. */
    CleanupResult cleanup(const tensor::Tensor &hv) const;

    /** Storage footprint of the atom table. */
    uint64_t bytes() const { return atoms_.bytes(); }

  private:
    tensor::Tensor atoms_; ///< [entries, dim] atom matrix.
    std::vector<float> norms_; ///< Per-atom L2 norms.
};

} // namespace nsbench::vsa

#endif // NSBENCH_VSA_CODEBOOK_HH
