#include "vsa/binary.hh"

#include <bit>

#include "core/profiler.hh"
#include "util/logging.hh"
#include "util/simd.hh"

namespace nsbench::vsa
{

using core::OpCategory;
using core::ScopedOp;
using tensor::Tensor;

namespace
{

int64_t
wordsFor(int64_t dim)
{
    return (dim + 63) / 64;
}

/** Clears any bits beyond the dimension in the last word. */
void
maskTail(std::vector<uint64_t> &words, int64_t dim)
{
    int tail = static_cast<int>(dim % 64);
    if (tail != 0 && !words.empty())
        words.back() &= (uint64_t{1} << tail) - 1;
}

} // namespace

BinaryVector::BinaryVector(int64_t dim) : dim_(dim)
{
    util::panicIf(dim < 1, "BinaryVector: non-positive dimension");
    words_.assign(static_cast<size_t>(wordsFor(dim)), 0);
}

BinaryVector
BinaryVector::random(int64_t dim, util::Rng &rng)
{
    BinaryVector out(dim);
    for (auto &word : out.words_)
        word = rng.engine()();
    maskTail(out.words_, dim);
    return out;
}

BinaryVector
BinaryVector::fromTensor(const Tensor &values)
{
    util::panicIf(values.dim() != 1,
                  "BinaryVector::fromTensor: rank-1 required");
    BinaryVector out(values.size(0));
    auto data = values.data();
    for (int64_t i = 0; i < values.size(0); i++)
        out.setBit(i, data[static_cast<size_t>(i)] > 0.0f);
    return out;
}

bool
BinaryVector::bit(int64_t index) const
{
    util::panicIf(index < 0 || index >= dim_,
                  "BinaryVector::bit: index out of range");
    return (words_[static_cast<size_t>(index / 64)] >>
            (index % 64)) &
           1u;
}

void
BinaryVector::setBit(int64_t index, bool value)
{
    util::panicIf(index < 0 || index >= dim_,
                  "BinaryVector::setBit: index out of range");
    uint64_t mask = uint64_t{1} << (index % 64);
    if (value)
        words_[static_cast<size_t>(index / 64)] |= mask;
    else
        words_[static_cast<size_t>(index / 64)] &= ~mask;
}

Tensor
BinaryVector::toBipolarTensor() const
{
    Tensor out({dim_});
    for (int64_t i = 0; i < dim_; i++)
        out(i) = bit(i) ? 1.0f : -1.0f;
    return out;
}

BinaryVector
xorBind(const BinaryVector &a, const BinaryVector &b)
{
    util::panicIf(a.dim() != b.dim(),
                  "bvsa_bind: dimension mismatch");
    ScopedOp op("bvsa_bind", OpCategory::VectorElementwise);
    BinaryVector out(a.dim());
    auto &words = out.words();
    util::simd::xorWords(a.words().data(), b.words().data(),
                         words.data(),
                         static_cast<int64_t>(words.size()));
    double bytes = static_cast<double>(words.size()) * 8.0;
    op.setFlops(static_cast<double>(a.dim()));
    op.setBytesRead(2.0 * bytes);
    op.setBytesWritten(bytes);
    return out;
}

BinaryVector
majorityBundle(const std::vector<BinaryVector> &vectors, bool tie_high)
{
    util::panicIf(vectors.empty(), "bvsa_majority: no vectors");
    int64_t dim = vectors[0].dim();
    for (const auto &v : vectors) {
        util::panicIf(v.dim() != dim,
                      "bvsa_majority: dimension mismatch");
    }

    ScopedOp op("bvsa_majority", OpCategory::VectorElementwise);
    BinaryVector out(dim);
    auto n = static_cast<int64_t>(vectors.size());
    for (int64_t i = 0; i < dim; i++) {
        int64_t ones = 0;
        for (const auto &v : vectors)
            ones += v.bit(i) ? 1 : 0;
        bool set = 2 * ones > n || (2 * ones == n && tie_high);
        out.setBit(i, set);
    }
    op.setFlops(static_cast<double>(dim * n));
    op.setBytesRead(static_cast<double>(n) *
                    static_cast<double>(dim) / 8.0);
    op.setBytesWritten(static_cast<double>(dim) / 8.0);
    return out;
}

BinaryVector
rotateBits(const BinaryVector &a, int64_t k)
{
    ScopedOp op("bvsa_permute", OpCategory::DataTransform);
    int64_t dim = a.dim();
    int64_t shift = ((k % dim) + dim) % dim;
    BinaryVector out(dim);
    for (int64_t i = 0; i < dim; i++)
        out.setBit((i + shift) % dim, a.bit(i));
    double bytes = static_cast<double>(dim) / 8.0;
    op.setBytesRead(bytes);
    op.setBytesWritten(bytes);
    return out;
}

int64_t
hammingDistance(const BinaryVector &a, const BinaryVector &b)
{
    util::panicIf(a.dim() != b.dim(),
                  "bvsa_hamming: dimension mismatch");
    ScopedOp op("bvsa_hamming", OpCategory::VectorElementwise);
    int64_t distance = util::simd::popcountXorWords(
        a.words().data(), b.words().data(),
        static_cast<int64_t>(a.words().size()));
    double bytes = static_cast<double>(a.words().size()) * 8.0;
    op.setFlops(static_cast<double>(a.words().size()) * 2.0);
    op.setBytesRead(2.0 * bytes);
    op.setBytesWritten(8.0);
    return distance;
}

double
binarySimilarity(const BinaryVector &a, const BinaryVector &b)
{
    return 1.0 - static_cast<double>(hammingDistance(a, b)) /
                     static_cast<double>(a.dim());
}

BinaryCodebook::BinaryCodebook(int64_t entries, int64_t dim,
                               util::Rng &rng)
    : dim_(dim)
{
    util::panicIf(entries < 1 || dim < 1,
                  "BinaryCodebook: non-positive size");
    atoms_.reserve(static_cast<size_t>(entries));
    for (int64_t e = 0; e < entries; e++)
        atoms_.push_back(BinaryVector::random(dim, rng));
}

const BinaryVector &
BinaryCodebook::atom(int64_t index) const
{
    util::panicIf(index < 0 || index >= entries(),
                  "BinaryCodebook::atom: index out of range");
    return atoms_[static_cast<size_t>(index)];
}

CleanupResult
BinaryCodebook::cleanup(const BinaryVector &query) const
{
    util::panicIf(query.dim() != dim_,
                  "BinaryCodebook::cleanup: dimension mismatch");
    ScopedOp op("bvsa_cleanup", OpCategory::MatMul);
    CleanupResult best;
    int64_t best_distance = dim_ + 1;
    for (int64_t e = 0; e < entries(); e++) {
        const auto &atom = atoms_[static_cast<size_t>(e)];
        int64_t distance = util::simd::popcountXorWords(
            atom.words().data(), query.words().data(),
            static_cast<int64_t>(atom.words().size()));
        if (distance < best_distance) {
            best_distance = distance;
            best.index = e;
        }
    }
    best.similarity =
        1.0f - static_cast<float>(best_distance) /
                   static_cast<float>(dim_);
    double touched = static_cast<double>(entries()) *
                     static_cast<double>(dim_) / 8.0;
    op.setFlops(static_cast<double>(entries()) *
                static_cast<double>(dim_) / 32.0);
    op.setBytesRead(touched + static_cast<double>(dim_) / 8.0);
    op.setBytesWritten(8.0);
    return best;
}

uint64_t
BinaryCodebook::bytes() const
{
    uint64_t total = 0;
    for (const auto &atom : atoms_)
        total += atom.bytes();
    return total;
}

} // namespace nsbench::vsa
