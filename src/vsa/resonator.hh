/**
 * @file
 * Resonator network for factorizing bound hypervector products.
 *
 * NVSA-style frontends represent an object as the binding of one atom
 * per attribute codebook; recovering the attributes from the product
 * is a combinatorial search that resonator networks solve iteratively
 * in superposition — the "efficient factorization of neural and
 * symbolic components" the paper's Recommendation 3 points at.
 */

#ifndef NSBENCH_VSA_RESONATOR_HH
#define NSBENCH_VSA_RESONATOR_HH

#include <cstdint>
#include <vector>

#include "vsa/codebook.hh"

namespace nsbench::vsa
{

/** Outcome of a resonator factorization. */
struct FactorizationResult
{
    std::vector<int64_t> factors; ///< Recovered atom index per book.
    int iterations = 0;           ///< Iterations until convergence.
    bool converged = false;       ///< Whether estimates stabilized.
};

/**
 * Iteratively factorizes a composite hypervector.
 *
 * @param composite The bound product bind(a1, a2, ..., ak), one atom
 *        drawn from each codebook.
 * @param books One codebook per factor (all of the same dimension).
 * @param max_iterations Iteration cap.
 * @return Recovered per-book atom indices; converged is false when the
 *         cap was reached with estimates still moving.
 */
FactorizationResult factorize(const tensor::Tensor &composite,
                              const std::vector<const Codebook *> &books,
                              int max_iterations = 64);

} // namespace nsbench::vsa

#endif // NSBENCH_VSA_RESONATOR_HH
