#include "vsa/fft.hh"

#include <cmath>
#include <numbers>

#include "util/logging.hh"

namespace nsbench::vsa
{

bool
isPowerOfTwo(size_t n)
{
    return n > 0 && (n & (n - 1)) == 0;
}

void
fft(std::vector<std::complex<double>> &values, bool inverse)
{
    size_t n = values.size();
    util::panicIf(!isPowerOfTwo(n), "fft: length must be a power of 2");
    if (n == 1)
        return;

    // Bit-reversal permutation.
    for (size_t i = 1, j = 0; i < n; i++) {
        size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(values[i], values[j]);
    }

    for (size_t len = 2; len <= n; len <<= 1) {
        double angle = 2.0 * std::numbers::pi /
                       static_cast<double>(len) * (inverse ? 1.0 : -1.0);
        std::complex<double> wlen(std::cos(angle), std::sin(angle));
        for (size_t i = 0; i < n; i += len) {
            std::complex<double> w(1.0, 0.0);
            for (size_t k = 0; k < len / 2; k++) {
                std::complex<double> u = values[i + k];
                std::complex<double> v = values[i + k + len / 2] * w;
                values[i + k] = u + v;
                values[i + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }

    if (inverse) {
        for (auto &v : values)
            v /= static_cast<double>(n);
    }
}

} // namespace nsbench::vsa
