/**
 * @file
 * Bit-packed binary vector-symbolic architecture.
 *
 * The paper's Tab. I tracks which algorithms use vector formats; the
 * binary VSA family (XOR binding, majority bundling, Hamming
 * similarity) is the storage- and bandwidth-friendly end of that
 * space: packing 64 dimensions per machine word cuts the codebook
 * bytes 32x against FP32 and turns binding into word-wide XOR — a
 * software counterpart to the paper's Recommendation 3/4 pressure
 * relief for the memory-bound symbolic phase.
 */

#ifndef NSBENCH_VSA_BINARY_HH
#define NSBENCH_VSA_BINARY_HH

#include <cstdint>
#include <vector>

#include "tensor/tensor.hh"
#include "util/rng.hh"
#include "vsa/codebook.hh"

namespace nsbench::vsa
{

/**
 * A dense binary hypervector packed 64 dimensions per word.
 */
class BinaryVector
{
  public:
    /** An empty (zero-dimension) vector. */
    BinaryVector() = default;

    /** All-zeros vector of the given dimension. */
    explicit BinaryVector(int64_t dim);

    /** I.i.d. uniform random bits. */
    static BinaryVector random(int64_t dim, util::Rng &rng);

    /**
     * Thresholds a bipolar/real tensor: bit i set iff value > 0.
     */
    static BinaryVector fromTensor(const tensor::Tensor &values);

    /** Dimension in bits. */
    int64_t dim() const { return dim_; }

    /** Bit accessor. */
    bool bit(int64_t index) const;

    /** Bit mutator. */
    void setBit(int64_t index, bool value);

    /** Packed storage (little-endian bit order within words). */
    const std::vector<uint64_t> &words() const { return words_; }

    /**
     * Mutable packed storage for word-wide operators. Callers must
     * keep bits beyond dim() zero.
     */
    std::vector<uint64_t> &words() { return words_; }

    /** Storage footprint in bytes. */
    uint64_t
    bytes() const
    {
        return words_.size() * sizeof(uint64_t);
    }

    /** Bipolar (+1/-1) tensor expansion. */
    tensor::Tensor toBipolarTensor() const;

    bool operator==(const BinaryVector &other) const = default;

  private:
    int64_t dim_ = 0;
    std::vector<uint64_t> words_;
};

/** XOR binding; its own inverse. Instrumented as "bvsa_bind". */
BinaryVector xorBind(const BinaryVector &a, const BinaryVector &b);

/**
 * Majority-rule bundling of an odd-or-even set of vectors (ties break
 * to 1 when @p tie_high). Instrumented as "bvsa_majority".
 */
BinaryVector majorityBundle(const std::vector<BinaryVector> &vectors,
                            bool tie_high = true);

/** Cyclic rotation by k bit positions. Instrumented as "bvsa_permute". */
BinaryVector rotateBits(const BinaryVector &a, int64_t k);

/** Hamming distance in bits. Instrumented as "bvsa_hamming". */
int64_t hammingDistance(const BinaryVector &a, const BinaryVector &b);

/** Normalized Hamming similarity in [0, 1]. */
double binarySimilarity(const BinaryVector &a, const BinaryVector &b);

/**
 * A packed associative memory over binary atoms.
 */
class BinaryCodebook
{
  public:
    /** Draws @p entries random atoms of dimension @p dim. */
    BinaryCodebook(int64_t entries, int64_t dim, util::Rng &rng);

    int64_t entries() const { return static_cast<int64_t>(atoms_.size()); }
    int64_t dim() const { return dim_; }

    /** Atom accessor. */
    const BinaryVector &atom(int64_t index) const;

    /** Index and similarity of the nearest atom (min Hamming). */
    CleanupResult cleanup(const BinaryVector &query) const;

    /** Packed storage footprint. */
    uint64_t bytes() const;

  private:
    int64_t dim_;
    std::vector<BinaryVector> atoms_;
};

} // namespace nsbench::vsa

#endif // NSBENCH_VSA_BINARY_HH
