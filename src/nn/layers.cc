#include "nn/layers.hh"

#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace nsbench::nn
{

using tensor::Shape;
using tensor::Tensor;

LinearLayer::LinearLayer(int64_t in, int64_t out, util::Rng &rng,
                         bool bias)
{
    util::panicIf(in < 1 || out < 1,
                  "LinearLayer: non-positive dimensions");
    float bound = std::sqrt(6.0f / static_cast<float>(in + out));
    weight_ = Tensor::rand({out, in}, rng, -bound, bound);
    if (bias)
        bias_ = Tensor::zeros({out});
}

Tensor
LinearLayer::forward(const Tensor &x)
{
    return tensor::linear(x, weight_, bias_);
}

uint64_t
LinearLayer::paramBytes() const
{
    return weight_.bytes() + (bias_.empty() ? 0 : bias_.bytes());
}

std::string
LinearLayer::describe() const
{
    std::ostringstream os;
    os << "linear(" << weight_.size(1) << "->" << weight_.size(0)
       << ")";
    return os.str();
}

Conv2dLayer::Conv2dLayer(int64_t in_channels, int64_t out_channels,
                         int64_t kernel, util::Rng &rng, int64_t stride,
                         int64_t padding, bool bias)
    : stride_(stride), padding_(padding)
{
    util::panicIf(in_channels < 1 || out_channels < 1 || kernel < 1,
                  "Conv2dLayer: non-positive dimensions");
    auto fan_in = static_cast<float>(in_channels * kernel * kernel);
    float bound = std::sqrt(2.0f / fan_in); // He init for ReLU nets
    weight_ = Tensor::randn({out_channels, in_channels, kernel, kernel},
                            rng, 0.0f, bound);
    if (bias)
        bias_ = Tensor::zeros({out_channels});
}

Tensor
Conv2dLayer::forward(const Tensor &x)
{
    return tensor::conv2d(x, weight_, bias_, stride_, padding_);
}

uint64_t
Conv2dLayer::paramBytes() const
{
    return weight_.bytes() + (bias_.empty() ? 0 : bias_.bytes());
}

std::string
Conv2dLayer::describe() const
{
    std::ostringstream os;
    os << "conv2d(" << weight_.size(1) << "->" << weight_.size(0)
       << ", k=" << weight_.size(2) << ", s=" << stride_
       << ", p=" << padding_ << ")";
    return os.str();
}

Tensor
ActivationLayer::forward(const Tensor &x)
{
    switch (kind_) {
      case Activation::Relu:
        return tensor::relu(x);
      case Activation::Sigmoid:
        return tensor::sigmoid(x);
      case Activation::Tanh:
        return tensor::tanhOp(x);
      case Activation::Identity:
        return x;
    }
    util::panic("ActivationLayer: unknown activation");
}

std::string
ActivationLayer::describe() const
{
    switch (kind_) {
      case Activation::Relu:
        return "relu";
      case Activation::Sigmoid:
        return "sigmoid";
      case Activation::Tanh:
        return "tanh";
      case Activation::Identity:
        return "identity";
    }
    return "?";
}

Tensor
MaxPoolLayer::forward(const Tensor &x)
{
    return tensor::maxPool2d(x, kernel_, stride_);
}

std::string
MaxPoolLayer::describe() const
{
    std::ostringstream os;
    os << "maxpool(k=" << kernel_ << ", s=" << stride_ << ")";
    return os.str();
}

Tensor
FlattenLayer::forward(const Tensor &x)
{
    util::panicIf(x.dim() < 1, "FlattenLayer: rank-0 input");
    int64_t n = x.size(0);
    return x.reshaped({n, x.numel() / std::max<int64_t>(n, 1)});
}

Tensor
SoftmaxLayer::forward(const Tensor &x)
{
    return tensor::softmax(x);
}

void
Sequential::add(std::unique_ptr<Layer> layer)
{
    util::panicIf(!layer, "Sequential::add: null layer");
    layers_.push_back(std::move(layer));
}

Tensor
Sequential::forward(const Tensor &x)
{
    Tensor h = x;
    for (auto &layer : layers_)
        h = layer->forward(h);
    return h;
}

uint64_t
Sequential::paramBytes() const
{
    uint64_t total = 0;
    for (const auto &layer : layers_)
        total += layer->paramBytes();
    return total;
}

std::string
Sequential::describe() const
{
    std::ostringstream os;
    os << "sequential[";
    for (size_t i = 0; i < layers_.size(); i++) {
        if (i)
            os << ", ";
        os << layers_[i]->describe();
    }
    os << "]";
    return os.str();
}

std::unique_ptr<Sequential>
makeMlp(const std::vector<int64_t> &widths, Activation activation,
        util::Rng &rng)
{
    util::panicIf(widths.size() < 2,
                  "makeMlp: need at least input and output widths");
    auto net = std::make_unique<Sequential>();
    for (size_t i = 0; i + 1 < widths.size(); i++) {
        net->add(std::make_unique<LinearLayer>(widths[i], widths[i + 1],
                                               rng));
        if (i + 2 < widths.size())
            net->add(std::make_unique<ActivationLayer>(activation));
    }
    return net;
}

std::unique_ptr<Sequential>
makeConvNet(int64_t in_channels, int64_t in_hw,
            const std::vector<ConvBlockSpec> &blocks,
            const std::vector<int64_t> &head_widths, util::Rng &rng)
{
    util::panicIf(blocks.empty(), "makeConvNet: no conv blocks");
    util::panicIf(head_widths.empty(), "makeConvNet: no head widths");

    auto net = std::make_unique<Sequential>();
    int64_t channels = in_channels;
    int64_t hw = in_hw;
    for (const auto &spec : blocks) {
        net->add(std::make_unique<Conv2dLayer>(channels,
                                               spec.outChannels,
                                               spec.kernel, rng,
                                               spec.stride,
                                               spec.padding));
        net->add(std::make_unique<ActivationLayer>(Activation::Relu));
        hw = (hw + 2 * spec.padding - spec.kernel) / spec.stride + 1;
        util::panicIf(hw < 1, "makeConvNet: spatial extent collapsed");
        if (spec.pool) {
            net->add(std::make_unique<MaxPoolLayer>(2, 2));
            hw = (hw - 2) / 2 + 1;
            util::panicIf(hw < 1,
                          "makeConvNet: pooled extent collapsed");
        }
        channels = spec.outChannels;
    }
    net->add(std::make_unique<FlattenLayer>());

    std::vector<int64_t> widths;
    widths.push_back(channels * hw * hw);
    widths.insert(widths.end(), head_widths.begin(), head_widths.end());
    for (size_t i = 0; i + 1 < widths.size(); i++) {
        net->add(std::make_unique<LinearLayer>(widths[i], widths[i + 1],
                                               rng));
        if (i + 2 < widths.size())
            net->add(
                std::make_unique<ActivationLayer>(Activation::Relu));
    }
    net->add(std::make_unique<SoftmaxLayer>());
    return net;
}

} // namespace nsbench::nn
