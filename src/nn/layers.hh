/**
 * @file
 * Neural-network layers built on the instrumented tensor ops.
 *
 * Layers are inference-oriented: the paper characterizes inference-time
 * behaviour, so parameters are initialized once (Xavier/He) and frozen.
 */

#ifndef NSBENCH_NN_LAYERS_HH
#define NSBENCH_NN_LAYERS_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/ops.hh"
#include "tensor/tensor.hh"
#include "util/rng.hh"

namespace nsbench::nn
{

/**
 * Abstract inference layer.
 */
class Layer
{
  public:
    virtual ~Layer() = default;

    /** Runs the layer on one input batch. */
    virtual tensor::Tensor forward(const tensor::Tensor &x) = 0;

    /** Bytes of persistent parameters held by the layer. */
    virtual uint64_t paramBytes() const = 0;

    /** Short structural description, e.g. "linear(64->32)". */
    virtual std::string describe() const = 0;
};

/** Element-wise nonlinearity choices. */
enum class Activation
{
    Relu,
    Sigmoid,
    Tanh,
    Identity,
};

/** Fully-connected layer: y = x W^T + b. */
class LinearLayer : public Layer
{
  public:
    /**
     * Xavier-uniform initialization.
     * @param in Input feature count.
     * @param out Output feature count.
     * @param rng Initialization source.
     * @param bias Whether to carry a bias vector.
     */
    LinearLayer(int64_t in, int64_t out, util::Rng &rng,
                bool bias = true);

    tensor::Tensor forward(const tensor::Tensor &x) override;
    uint64_t paramBytes() const override;
    std::string describe() const override;

    /** Weight matrix accessor ([out, in]). */
    const tensor::Tensor &weight() const { return weight_; }

  private:
    tensor::Tensor weight_;
    tensor::Tensor bias_;
};

/** 2-D convolution layer (NCHW). */
class Conv2dLayer : public Layer
{
  public:
    Conv2dLayer(int64_t in_channels, int64_t out_channels,
                int64_t kernel, util::Rng &rng, int64_t stride = 1,
                int64_t padding = 0, bool bias = true);

    tensor::Tensor forward(const tensor::Tensor &x) override;
    uint64_t paramBytes() const override;
    std::string describe() const override;

  private:
    tensor::Tensor weight_;
    tensor::Tensor bias_;
    int64_t stride_;
    int64_t padding_;
};

/** Stateless activation layer. */
class ActivationLayer : public Layer
{
  public:
    explicit ActivationLayer(Activation kind) : kind_(kind) {}

    tensor::Tensor forward(const tensor::Tensor &x) override;
    uint64_t paramBytes() const override { return 0; }
    std::string describe() const override;

  private:
    Activation kind_;
};

/** Max pooling layer. */
class MaxPoolLayer : public Layer
{
  public:
    MaxPoolLayer(int64_t kernel, int64_t stride)
        : kernel_(kernel), stride_(stride)
    {}

    tensor::Tensor forward(const tensor::Tensor &x) override;
    uint64_t paramBytes() const override { return 0; }
    std::string describe() const override;

  private:
    int64_t kernel_;
    int64_t stride_;
};

/** Flattens [N, ...] to [N, features]. */
class FlattenLayer : public Layer
{
  public:
    tensor::Tensor forward(const tensor::Tensor &x) override;
    uint64_t paramBytes() const override { return 0; }
    std::string describe() const override { return "flatten"; }
};

/** Softmax over the last dimension. */
class SoftmaxLayer : public Layer
{
  public:
    tensor::Tensor forward(const tensor::Tensor &x) override;
    uint64_t paramBytes() const override { return 0; }
    std::string describe() const override { return "softmax"; }
};

/** Ordered container of layers. */
class Sequential : public Layer
{
  public:
    Sequential() = default;

    /** Appends a layer. */
    void add(std::unique_ptr<Layer> layer);

    tensor::Tensor forward(const tensor::Tensor &x) override;
    uint64_t paramBytes() const override;
    std::string describe() const override;

    /** Number of contained layers. */
    size_t size() const { return layers_.size(); }

  private:
    std::vector<std::unique_ptr<Layer>> layers_;
};

/**
 * Builds an MLP with the given layer widths; a nonlinearity follows
 * every layer but the last.
 */
std::unique_ptr<Sequential> makeMlp(const std::vector<int64_t> &widths,
                                    Activation activation,
                                    util::Rng &rng);

/** Configuration of one conv block of makeConvNet. */
struct ConvBlockSpec
{
    int64_t outChannels;    ///< Output channel count.
    int64_t kernel;         ///< Square kernel size.
    int64_t stride = 1;     ///< Convolution stride.
    int64_t padding = 0;    ///< Zero padding.
    bool pool = false;      ///< Append a 2x2/2 max pool.
};

/**
 * Builds a small perception ConvNet: conv blocks with ReLU (and
 * optional pooling), then flatten and an MLP head ending in softmax.
 *
 * @param in_channels Input image channels.
 * @param in_hw Input spatial extent (square).
 * @param blocks Conv block configuration.
 * @param head_widths MLP head widths, last entry is the output size.
 */
std::unique_ptr<Sequential> makeConvNet(
    int64_t in_channels, int64_t in_hw,
    const std::vector<ConvBlockSpec> &blocks,
    const std::vector<int64_t> &head_widths, util::Rng &rng);

} // namespace nsbench::nn

#endif // NSBENCH_NN_LAYERS_HH
