/**
 * @file
 * Reverse-mode automatic differentiation.
 *
 * The paper's Tab. III lists supervised/unsupervised training
 * approaches for every workload, and its outlook asks for software
 * frameworks with differentiable logic structures. This module adds a
 * small dynamic-graph autograd over the instrumented tensor ops:
 * enough to train LTN-style predicate groundings by maximizing fuzzy
 * theory satisfaction (see examples/ltn_training.cpp). Forward and
 * backward passes run through the same profiled tensor kernels, so
 * training runs are characterized exactly like inference runs.
 */

#ifndef NSBENCH_NN_AUTOGRAD_HH
#define NSBENCH_NN_AUTOGRAD_HH

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.hh"

namespace nsbench::nn
{

/**
 * A node of the dynamically-recorded computation graph. Users hold
 * Variable handles; nodes stay alive as long as some downstream
 * Variable references them.
 */
class Variable
{
  public:
    /** An empty (detached, valueless) variable. */
    Variable() = default;

    /**
     * Wraps a tensor as a graph leaf.
     * @param requires_grad Leaves with true accumulate gradients.
     */
    explicit Variable(tensor::Tensor value, bool requires_grad = false);

    /** True when the handle refers to a node. */
    bool defined() const { return node_ != nullptr; }

    /** Forward value. */
    const tensor::Tensor &value() const;

    /**
     * Accumulated gradient; zeros of the value's shape before any
     * backward() reaches this node.
     */
    const tensor::Tensor &grad() const;

    /** Whether gradients flow into this node. */
    bool requiresGrad() const;

    /**
     * Runs reverse-mode differentiation from this (scalar) variable:
     * seeds d(this)/d(this) = 1 and accumulates into every reachable
     * leaf with requiresGrad.
     */
    void backward();

    /** Clears this node's accumulated gradient. */
    void zeroGrad();

    /**
     * In-place descent step value -= lr * grad; used by optimizers.
     * No-op when no gradient has been accumulated.
     */
    void applyGradientStep(float lr);

    /** @name Graph-building operations. Shapes follow tensor/ops.hh.
     *  @{ */
    friend Variable addV(const Variable &a, const Variable &b);
    friend Variable subV(const Variable &a, const Variable &b);
    friend Variable mulV(const Variable &a, const Variable &b);
    friend Variable matmulV(const Variable &a, const Variable &b);
    /** y = x W^T + bias; pass an undefined bias to skip it. */
    friend Variable linearV(const Variable &x, const Variable &w,
                            const Variable &bias);
    /**
     * NCHW convolution with gradients for input, weight and the
     * optional bias (pass an undefined bias to skip it).
     */
    friend Variable conv2dV(const Variable &input,
                            const Variable &weight,
                            const Variable &bias, int64_t stride,
                            int64_t padding);
    friend Variable sigmoidV(const Variable &a);
    friend Variable tanhV(const Variable &a);
    friend Variable reluV(const Variable &a);
    /** Element-wise power with a constant, positive-base exponent. */
    friend Variable powV(const Variable &a, float exponent);
    friend Variable logV(const Variable &a);
    friend Variable addScalarV(const Variable &a, float s);
    friend Variable mulScalarV(const Variable &a, float s);
    /** Mean over all elements, as a [1] tensor. */
    friend Variable meanAllV(const Variable &a);
    /** Sum over all elements, as a [1] tensor. */
    friend Variable sumAllV(const Variable &a);
    /** @} */

  private:
    struct Node;
    std::shared_ptr<Node> node_;

    explicit Variable(std::shared_ptr<Node> node)
        : node_(std::move(node))
    {}

    static Variable makeResult(tensor::Tensor value,
                               std::vector<Variable> inputs,
                               std::function<void(Node &)> backward);
};

/**
 * Plain stochastic gradient descent over leaf variables.
 */
class SgdOptimizer
{
  public:
    /** @param lr Learning rate. */
    explicit SgdOptimizer(float lr) : lr_(lr) {}

    /** Registers a trainable leaf. */
    void addParameter(const Variable &param);

    /** Applies one descent step and clears gradients. */
    void step();

    /** Clears all registered gradients. */
    void zeroGrad();

  private:
    float lr_;
    std::vector<Variable> params_;
};

} // namespace nsbench::nn

#endif // NSBENCH_NN_AUTOGRAD_HH
