#include "nn/autograd.hh"

#include <unordered_set>

#include "core/profiler.hh"

#include "tensor/ops.hh"
#include "util/logging.hh"

namespace nsbench::nn
{

using tensor::Tensor;

/**
 * Graph node: forward value, accumulated gradient, recorded inputs
 * and the function distributing this node's gradient to them.
 */
struct Variable::Node
{
    Tensor value;
    Tensor grad; ///< Allocated on first accumulation.
    bool requiresGrad = false;
    std::vector<Variable> inputs;
    std::function<void(Node &)> backwardFn;

    /** Adds @p g into this node's gradient (if it participates). */
    void
    accumulate(const Tensor &g)
    {
        if (!requiresGrad)
            return;
        util::panicIf(g.shape() != value.shape(),
                      "autograd: gradient shape mismatch");
        if (grad.empty())
            grad = g.clone();
        else
            tensor::addInPlace(grad, g);
    }
};

Variable::Variable(Tensor value, bool requires_grad)
    : node_(std::make_shared<Node>())
{
    node_->value = std::move(value);
    node_->requiresGrad = requires_grad;
}

const Tensor &
Variable::value() const
{
    util::panicIf(!node_, "Variable::value: undefined variable");
    return node_->value;
}

const Tensor &
Variable::grad() const
{
    util::panicIf(!node_, "Variable::grad: undefined variable");
    if (node_->grad.empty())
        node_->grad = Tensor::zeros(node_->value.shape());
    return node_->grad;
}

bool
Variable::requiresGrad() const
{
    return node_ && node_->requiresGrad;
}

void
Variable::zeroGrad()
{
    if (node_)
        node_->grad = Tensor();
}

void
Variable::applyGradientStep(float lr)
{
    if (!node_ || node_->grad.empty())
        return;
    // In-place SGD update; subScaledInPlace is mul-then-sub, so the
    // result is bit-identical to sub(value, mulScalar(grad, lr)).
    tensor::subScaledInPlace(node_->value, node_->grad, lr);
}

void
Variable::backward()
{
    util::panicIf(!node_, "Variable::backward: undefined variable");

    // Post-order DFS for a topological order of the reachable graph.
    std::vector<Node *> order;
    std::unordered_set<Node *> visited;
    std::vector<std::pair<Node *, size_t>> stack{{node_.get(), 0}};
    visited.insert(node_.get());
    while (!stack.empty()) {
        auto &[node, next] = stack.back();
        if (next < node->inputs.size()) {
            Node *child = node->inputs[next].node_.get();
            next++;
            if (child && !visited.count(child)) {
                visited.insert(child);
                stack.emplace_back(child, 0);
            }
        } else {
            order.push_back(node);
            stack.pop_back();
        }
    }

    node_->accumulate(Tensor::ones(node_->value.shape()));
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        Node *node = *it;
        if (node->backwardFn && node->requiresGrad &&
            !node->grad.empty()) {
            node->backwardFn(*node);
        }
    }
}

Variable
Variable::makeResult(Tensor value, std::vector<Variable> inputs,
                     std::function<void(Node &)> backward)
{
    auto node = std::make_shared<Node>();
    node->value = std::move(value);
    node->inputs = std::move(inputs);
    node->backwardFn = std::move(backward);
    for (const auto &input : node->inputs) {
        if (input.requiresGrad()) {
            node->requiresGrad = true;
            break;
        }
    }
    return Variable(std::move(node));
}

Variable
addV(const Variable &a, const Variable &b)
{
    return Variable::makeResult(
        tensor::add(a.value(), b.value()), {a, b},
        [](Variable::Node &n) {
            n.inputs[0].node_->accumulate(n.grad);
            n.inputs[1].node_->accumulate(n.grad);
        });
}

Variable
subV(const Variable &a, const Variable &b)
{
    return Variable::makeResult(
        tensor::sub(a.value(), b.value()), {a, b},
        [](Variable::Node &n) {
            n.inputs[0].node_->accumulate(n.grad);
            n.inputs[1].node_->accumulate(tensor::neg(n.grad));
        });
}

Variable
mulV(const Variable &a, const Variable &b)
{
    return Variable::makeResult(
        tensor::mul(a.value(), b.value()), {a, b},
        [](Variable::Node &n) {
            n.inputs[0].node_->accumulate(
                tensor::mul(n.grad, n.inputs[1].value()));
            n.inputs[1].node_->accumulate(
                tensor::mul(n.grad, n.inputs[0].value()));
        });
}

Variable
matmulV(const Variable &a, const Variable &b)
{
    return Variable::makeResult(
        tensor::matmul(a.value(), b.value()), {a, b},
        [](Variable::Node &n) {
            n.inputs[0].node_->accumulate(tensor::matmul(
                n.grad, tensor::transpose2d(n.inputs[1].value())));
            n.inputs[1].node_->accumulate(tensor::matmul(
                tensor::transpose2d(n.inputs[0].value()), n.grad));
        });
}

Variable
linearV(const Variable &x, const Variable &w, const Variable &bias)
{
    bool has_bias = bias.defined();
    Tensor out = tensor::linear(x.value(), w.value(),
                                has_bias ? bias.value() : Tensor());
    std::vector<Variable> inputs{x, w};
    if (has_bias)
        inputs.push_back(bias);
    return Variable::makeResult(
        std::move(out), std::move(inputs),
        [has_bias](Variable::Node &n) {
            // y = x W^T (+ b): dx = dy W, dW = dy^T x, db = sum_rows dy.
            n.inputs[0].node_->accumulate(
                tensor::matmul(n.grad, n.inputs[1].value()));
            n.inputs[1].node_->accumulate(tensor::matmul(
                tensor::transpose2d(n.grad), n.inputs[0].value()));
            if (has_bias) {
                n.inputs[2].node_->accumulate(
                    tensor::sumAxis(n.grad, 0));
            }
        });
}

Variable
conv2dV(const Variable &input, const Variable &weight,
        const Variable &bias, int64_t stride, int64_t padding)
{
    bool has_bias = bias.defined();
    Tensor out = tensor::conv2d(input.value(), weight.value(),
                                has_bias ? bias.value() : Tensor(),
                                stride, padding);
    std::vector<Variable> inputs{input, weight};
    if (has_bias)
        inputs.push_back(bias);

    return Variable::makeResult(
        std::move(out), std::move(inputs),
        [has_bias, stride, padding](Variable::Node &node) {
            const Tensor &in = node.inputs[0].value();
            const Tensor &wt = node.inputs[1].value();
            const Tensor &dy = node.grad;

            int64_t n = in.size(0), c = in.size(1);
            int64_t h = in.size(2), w = in.size(3);
            int64_t o = wt.size(0);
            int64_t kh = wt.size(2), kw = wt.size(3);
            int64_t oh = dy.size(2), ow = dy.size(3);

            core::ScopedOp op("conv2d_backward",
                              core::OpCategory::Convolution);
            Tensor d_in(in.shape());
            Tensor d_wt(wt.shape());
            Tensor d_bias = has_bias
                                ? Tensor(node.inputs[2]
                                             .value()
                                             .shape())
                                : Tensor();

            for (int64_t b = 0; b < n; b++) {
                for (int64_t oc = 0; oc < o; oc++) {
                    for (int64_t oy = 0; oy < oh; oy++) {
                        for (int64_t ox = 0; ox < ow; ox++) {
                            float g = dy(b, oc, oy, ox);
                            if (has_bias)
                                d_bias(oc) += g;
                            int64_t iy0 = oy * stride - padding;
                            int64_t ix0 = ox * stride - padding;
                            for (int64_t ic = 0; ic < c; ic++) {
                                for (int64_t ky = 0; ky < kh;
                                     ky++) {
                                    int64_t iy = iy0 + ky;
                                    if (iy < 0 || iy >= h)
                                        continue;
                                    for (int64_t kx = 0; kx < kw;
                                         kx++) {
                                        int64_t ix = ix0 + kx;
                                        if (ix < 0 || ix >= w)
                                            continue;
                                        d_in(b, ic, iy, ix) +=
                                            g *
                                            wt(oc, ic, ky, kx);
                                        d_wt(oc, ic, ky, kx) +=
                                            g *
                                            in(b, ic, iy, ix);
                                    }
                                }
                            }
                        }
                    }
                }
            }

            double macs = static_cast<double>(n * o * oh * ow) *
                          static_cast<double>(c * kh * kw);
            op.setFlops(4.0 * macs);
            op.setBytesRead(
                static_cast<double>(in.numel() + wt.numel() +
                                    dy.numel()) *
                4.0);
            op.setBytesWritten(
                static_cast<double>(in.numel() + wt.numel()) * 4.0);

            node.inputs[0].node_->accumulate(d_in);
            node.inputs[1].node_->accumulate(d_wt);
            if (has_bias)
                node.inputs[2].node_->accumulate(d_bias);
        });
}

Variable
sigmoidV(const Variable &a)
{
    Tensor y = tensor::sigmoid(a.value());
    return Variable::makeResult(
        y, {a}, [](Variable::Node &n) {
            // dy/dx = y (1 - y).
            Tensor one_minus = tensor::sub(
                Tensor::ones(n.value.shape()), n.value);
            n.inputs[0].node_->accumulate(tensor::mul(
                n.grad, tensor::mul(n.value, one_minus)));
        });
}

Variable
tanhV(const Variable &a)
{
    Tensor y = tensor::tanhOp(a.value());
    return Variable::makeResult(
        y, {a}, [](Variable::Node &n) {
            // dy/dx = 1 - y^2.
            Tensor y2 = tensor::mul(n.value, n.value);
            n.inputs[0].node_->accumulate(tensor::mul(
                n.grad,
                tensor::sub(Tensor::ones(n.value.shape()), y2)));
        });
}

Variable
reluV(const Variable &a)
{
    return Variable::makeResult(
        tensor::relu(a.value()), {a}, [](Variable::Node &n) {
            Tensor mask = tensor::clamp(
                tensor::sign(n.inputs[0].value()), 0.0f, 1.0f);
            n.inputs[0].node_->accumulate(
                tensor::mul(n.grad, mask));
        });
}

Variable
powV(const Variable &a, float exponent)
{
    return Variable::makeResult(
        tensor::powOp(a.value(), exponent), {a},
        [exponent](Variable::Node &n) {
            Tensor dpow = tensor::mulScalar(
                tensor::powOp(n.inputs[0].value(), exponent - 1.0f),
                exponent);
            n.inputs[0].node_->accumulate(
                tensor::mul(n.grad, dpow));
        });
}

Variable
logV(const Variable &a)
{
    return Variable::makeResult(
        tensor::logOp(a.value()), {a}, [](Variable::Node &n) {
            n.inputs[0].node_->accumulate(
                tensor::div(n.grad, n.inputs[0].value()));
        });
}

Variable
addScalarV(const Variable &a, float s)
{
    return Variable::makeResult(
        tensor::addScalar(a.value(), s), {a},
        [](Variable::Node &n) {
            n.inputs[0].node_->accumulate(n.grad);
        });
}

Variable
mulScalarV(const Variable &a, float s)
{
    return Variable::makeResult(
        tensor::mulScalar(a.value(), s), {a},
        [s](Variable::Node &n) {
            n.inputs[0].node_->accumulate(
                tensor::mulScalar(n.grad, s));
        });
}

Variable
meanAllV(const Variable &a)
{
    float mean = tensor::meanAll(a.value());
    return Variable::makeResult(
        Tensor({1}, {mean}), {a}, [](Variable::Node &n) {
            const Tensor &input = n.inputs[0].value();
            float g = n.grad.flat(0) /
                      static_cast<float>(input.numel());
            n.inputs[0].node_->accumulate(
                Tensor::full(input.shape(), g));
        });
}

Variable
sumAllV(const Variable &a)
{
    float sum = tensor::sumAll(a.value());
    return Variable::makeResult(
        Tensor({1}, {sum}), {a}, [](Variable::Node &n) {
            const Tensor &input = n.inputs[0].value();
            n.inputs[0].node_->accumulate(
                Tensor::full(input.shape(), n.grad.flat(0)));
        });
}

void
SgdOptimizer::addParameter(const Variable &param)
{
    util::panicIf(!param.requiresGrad(),
                  "SgdOptimizer: parameter does not require grad");
    params_.push_back(param);
}

void
SgdOptimizer::step()
{
    for (auto &param : params_) {
        param.applyGradientStep(lr_);
        param.zeroGrad();
    }
}

void
SgdOptimizer::zeroGrad()
{
    for (auto &param : params_)
        param.zeroGrad();
}

} // namespace nsbench::nn
