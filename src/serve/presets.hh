/**
 * @file
 * Serve-sized workload presets.
 *
 * The characterization configs (the registry defaults) size each
 * workload for offline profiling — NVSA alone runs for seconds per
 * invocation. Online serving wants request-sized work: one episode
 * per request, smaller hypervector spaces where the default is
 * profiling-sized. serveFactory() builds replicas at those presets;
 * workloads without an entry fall back to the registry default.
 */

#ifndef NSBENCH_SERVE_PRESETS_HH
#define NSBENCH_SERVE_PRESETS_HH

#include <memory>
#include <string>

#include "core/workload.hh"

namespace nsbench::serve
{

/**
 * Builds a serve-sized replica of the named workload; fatal() on
 * unknown names (same contract as the registry).
 */
std::unique_ptr<core::Workload>
serveFactory(const std::string &name);

} // namespace nsbench::serve

#endif // NSBENCH_SERVE_PRESETS_HH
