/**
 * @file
 * The batching stage between admission and the worker pool.
 *
 * The batcher is a single thread that drains the admission queue and
 * coalesces compatible requests — same workload — into batches of at
 * most maxBatch requests. The first request of a batch starts a
 * maxWait timer; the batch is dispatched when it fills or the timer
 * expires, whichever comes first, so light load pays at most maxWait
 * extra latency and heavy load runs at full occupancy. On drain the
 * batcher flushes every pending batch and closes the batch queue, so
 * shutdown never strands an admitted request.
 */

#ifndef NSBENCH_SERVE_BATCHER_HH
#define NSBENCH_SERVE_BATCHER_HH

#include <chrono>
#include <map>
#include <string>
#include <vector>

#include "serve/metrics.hh"
#include "serve/queue.hh"
#include "serve/request.hh"

namespace nsbench::serve
{

/**
 * Coalesces admitted requests into per-workload batches.
 */
class Batcher
{
  public:
    /**
     * @param in       Admission queue the server pushes into.
     * @param out      Batch queue the workers pop from.
     * @param maxBatch Maximum requests per batch; must be positive.
     * @param maxWait  Longest a non-full batch may wait for company.
     * @param metrics  Sink for per-batch occupancy accounting.
     */
    Batcher(BoundedQueue<Request> &in, BoundedQueue<Batch> &out,
            int maxBatch, std::chrono::microseconds maxWait,
            ServerMetrics &metrics);

    /**
     * Drains @c in until it is closed and empty, then flushes pending
     * batches and closes @c out. Runs on the server's batcher thread.
     */
    void run();

  private:
    /** One accumulating batch and its dispatch deadline. */
    struct Pending
    {
        std::vector<Request> requests;
        TimePoint flushAt{};
    };

    /** Adds one request, dispatching its batch if now full. */
    void admit(Request request);

    /** Dispatches every pending batch whose timer has expired. */
    void flushDue(TimePoint now);

    /** Dispatches all pending batches regardless of timers. */
    void flushAll();

    /** Dispatches one workload's pending batch. */
    void dispatch(const std::string &workload, Pending &pending);

    /** Earliest pending flush deadline, or noDeadline(). */
    TimePoint nextFlushAt() const;

    BoundedQueue<Request> &in_;
    BoundedQueue<Batch> &out_;
    int maxBatch_;
    std::chrono::microseconds maxWait_;
    ServerMetrics &metrics_;
    std::map<std::string, Pending> pending_;
};

} // namespace nsbench::serve

#endif // NSBENCH_SERVE_BATCHER_HH
