/**
 * @file
 * The batched neuro-symbolic inference server.
 *
 * A Server owns the admission queue, the batching thread and a pool
 * of worker threads. Each worker pre-warms one replica of every
 * served workload — setUp runs once per replica and is reused across
 * requests — then executes batches popped from the batch queue.
 *
 * Determinism contract: a workload's score is a pure function of
 * (model seed, episode seed). The server relies on this in both
 * directions. Replicas built from the same model seed are
 * interchangeable, so a request's score does not depend on which
 * worker runs it, how requests were batched, or their arrival order.
 * And equal requests are *coalescible*: when coalescing is enabled
 * the worker runs each distinct episode seed in a batch once and fans
 * the score out to every request that asked for it (for workloads
 * that declare seedSensitive() == false, the whole batch shares one
 * run). That sharing is where batching's throughput gain comes from
 * on CPU-bound workloads.
 *
 * Each worker pins itself into ThreadPool::SerialScope and installs a
 * thread-local profiler target, so requests execute single-threaded
 * on the worker with an exact per-execution neural/symbolic phase
 * split, and concurrent workers never contend on the shared pool.
 */

#ifndef NSBENCH_SERVE_SERVER_HH
#define NSBENCH_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cache/result_cache.hh"
#include "cache/single_flight.hh"
#include "core/profiler.hh"
#include "core/workload.hh"
#include "serve/batcher.hh"
#include "serve/metrics.hh"
#include "serve/queue.hh"
#include "serve/request.hh"

namespace nsbench::serve
{

/** Server construction knobs. */
struct ServerOptions
{
    /** Workloads this server hosts (replica of each per worker). */
    std::vector<std::string> workloads;
    int workers = 2;              ///< Worker threads (replica sets).
    int maxBatch = 8;             ///< Batcher coalescing limit.
    int64_t maxWaitUs = 2000;     ///< Batcher wait for a non-full batch.
    size_t queueCapacity = 256;   ///< Admission queue bound.
    size_t batchQueueCapacity = 0;///< Batch queue bound; 0 -> 2*workers.
    uint64_t modelSeed = 42;      ///< setUp seed for every replica.
    bool coalesce = true;         ///< Share executions across equal requests.
    bool profilePhases = true;    ///< Collect the neural/symbolic split.
    /**
     * Enables the request-result cache: repeats of a completed
     * (workload, episode seed) are answered at admission without a
     * run(), and concurrent misses on one key execute once
     * (single-flight). Valid because scores are pure in (model seed,
     * episode seed) — the determinism contract above. Default off so
     * every existing test and bench sees the historical execution
     * counts; the CLI/bench layer opts in via NSBENCH_CACHE/--cache.
     */
    bool resultCache = false;
    uint64_t cacheBytes = 64ull << 20; ///< Result-cache byte budget.
    size_t cacheShards = 8;            ///< Result-cache shard count.
    /**
     * Consult the result cache at admission (the hit-serving path).
     * Off, the cache still records completions and still backs the
     * serve-stale fallback, but every request reaches a worker —
     * "fallback-only" mode, used by the chaos tests to exercise the
     * failure path deterministically.
     */
    bool cacheAdmissionLookup = true;
    /**
     * Resilience knobs. With no faults (empty failpoint spec, no
     * exceptions out of run()) none of these change any behaviour:
     * retries only trigger on a throwing run(), shedding is disabled
     * at 0, and the stale fallback only runs after a failure.
     */
    int maxRetries = 2;           ///< Re-attempts for a failed run().
    int64_t retryBackoffUs = 200; ///< First backoff; doubles per retry.
    /**
     * Overload load-shedding: reject with RejectedOverload when the
     * admission queue is at least this full (fraction of capacity).
     * 0 disables; 0.9 sheds at 90% occupancy, keeping headroom so
     * queue waits stay bounded under sustained overload.
     */
    double shedAtOccupancy = 0.0;
    /**
     * Queue-delay-based adaptive shedding (CoDel-style), complementing
     * the static occupancy gate above: workers maintain an EWMA of
     * observed queue sojourn (submit -> dispatch), and when it has
     * stayed above this target for longer than a short grace interval
     * submit() sheds with RejectedOverload until the sojourn recovers.
     * Catches the overload mode occupancy cannot see — a queue that is
     * short but *draining slowly* (e.g. a degraded worker). 0 = off.
     */
    int64_t targetSojournUs = 0;
    /** How long the sojourn EWMA must exceed the target before the
     *  adaptive gate starts shedding (absorbs bursts). */
    int64_t sojournGraceUs = 100000;
    /**
     * On a run() that still fails after every retry, serve the last
     * cached score for the key (marked stale) instead of failing the
     * request. Needs the result cache; by the determinism contract
     * the stale score equals the fresh one, so this fallback is
     * byte-exact — the generic mechanism matters, not the bytes.
     */
    bool staleFallback = true;
    /**
     * Intra-replica stage pipelining (opt-in, 0 = off). When a batch
     * coalesces into two or more executions of a staged workload
     * (stageCount() > 1), the worker runs them through
     * exec::runPipelined with this inter-stage queue depth instead of
     * back-to-back run() calls, overlapping execution i's symbolic
     * stage with execution i+1's neural stage. Scores stay
     * byte-identical to the serial path (the staged-interface
     * determinism contract). While fault injection is armed the
     * worker falls back to the serial retry path, so the resilience
     * semantics — bounded retries, replica replacement, stale
     * fallback — are unchanged under chaos testing.
     */
    int pipelineDepth = 0;
    /**
     * Replica factory; defaults to the global workload registry.
     * Override to serve reduced-size configs (e.g. a serve-sized
     * NVSA) without touching the registry.
     */
    std::function<std::unique_ptr<core::Workload>(const std::string &)>
        factory;
};

/**
 * Batched serving runtime over pre-warmed workload replicas.
 */
class Server
{
  public:
    /**
     * Builds the replicas and starts the batcher and worker threads.
     * Blocks until every worker has finished pre-warming, so the
     * first request never pays setUp cost.
     */
    explicit Server(ServerOptions options);

    /** Graceful shutdown (drains admitted work). */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Submits a request. Returns Ok when admitted — the callback will
     * fire exactly once later — or a rejection status, in which case
     * the callback is never invoked.
     *
     * A non-null @p cancel token makes the request abandonable: if
     * the submitter sets the token while the request is still queued,
     * the worker answers Canceled without running it. Best-effort —
     * cache hits, single-flight followers and already-executing
     * requests complete normally; the exactly-once callback contract
     * holds either way.
     */
    RequestStatus submit(const std::string &workload, uint64_t seed,
                         Callback done,
                         TimePoint deadline = noDeadline(),
                         CancelToken cancel = nullptr);

    /** Blocking convenience wrapper: submit and wait for completion. */
    Response call(const std::string &workload, uint64_t seed,
                  TimePoint deadline = noDeadline());

    /**
     * Stops admission, waits for every admitted request to complete,
     * and joins all threads. Idempotent; also run by the destructor.
     */
    void shutdown();

    /** The metrics sink (live; snapshot via its accessors). */
    ServerMetrics &metrics() { return metrics_; }

    /** Clears metrics between load-sweep operating points. */
    void resetMetrics() { metrics_.reset(); }

    /** Served workload names, in option order. */
    const std::vector<std::string> &workloads() const
    {
        return options_.workloads;
    }

    /** The options the server was built with. */
    const ServerOptions &options() const { return options_; }

    /** The result cache, or nullptr when disabled. */
    const cache::ResultCache *
    resultCache() const
    {
        return cache_.get();
    }

  private:
    /** Per-worker replica with its private profiler. */
    struct Replica
    {
        std::unique_ptr<core::Workload> workload;
        core::Profiler profiler;
    };

    /** A parked single-flight follower awaiting its leader's result. */
    struct Flight
    {
        uint64_t id = 0;
        TimePoint enqueue{};
        TimePoint deadline = TimePoint::max();
        Callback done;
    };

    /** Worker thread body: pre-warm, signal ready, serve batches. */
    void workerMain(int workerIndex);

    /** Folds one observed queue sojourn into the EWMA (dispatch). */
    void noteSojourn(int64_t sojournUs);

    /** True when the adaptive sojourn gate says to shed right now. */
    bool sojournOverloaded(TimePoint now);

    /** Executes one batch on this worker's replicas. */
    void runBatchOn(std::map<std::string, Replica> &replicas,
                    const Batch &batch);

    /**
     * Invokes a completion callback, containing anything it throws:
     * one misbehaving client must never kill a worker thread or
     * strand the rest of its batch.
     */
    void deliver(const std::string &workload, const Callback &done,
                 const Response &response);

    /**
     * Supervisor: replaces a poisoned replica with a freshly built
     * one (same factory, same model seed — interchangeable by the
     * determinism contract). In-flight requests stay parked with the
     * worker, so no callback is dropped. A failed rebuild keeps the
     * old replica; the retry loop decides what happens next.
     */
    void rebuildReplica(const std::string &name, Replica &replica);

    /**
     * Leader-completion hook: caches an Ok score, then fans the
     * leader's outcome to every parked follower of @p key.
     */
    void finishFlight(const std::string &workload,
                      const std::string &key, const Callback &inner,
                      const Response &response);

    /**
     * Leader-admission-failure hook: delivers @p status to every
     * parked follower (they were told Ok at submit, so the rejection
     * must reach them through their callbacks).
     */
    void abortFlight(const std::string &workload,
                     const std::string &key, RequestStatus status);

    ServerOptions options_;
    ServerMetrics metrics_;
    BoundedQueue<Request> admission_;
    BoundedQueue<Batch> batches_;
    std::unique_ptr<Batcher> batcher_;
    std::unique_ptr<cache::ResultCache> cache_;
    cache::SingleFlight<Flight> flights_;
    /** Per-workload seedSensitive(), probed once at construction. */
    std::map<std::string, bool> seedSensitive_;
    std::thread batcherThread_;
    std::vector<std::thread> workers_;
    std::atomic<uint64_t> nextId_{1};
    /** EWMA of observed queue sojourn in microseconds (alpha 1/8),
     *  updated by workers at dispatch; read by the adaptive gate. */
    std::atomic<int64_t> sojournEwmaUs_{0};
    /** Serve-clock microseconds when the EWMA first exceeded the
     *  target (0 = currently under target). */
    std::atomic<int64_t> sojournAboveSinceUs_{0};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> joined_{false};
    std::mutex readyMu_;
    std::condition_variable readyCv_;
    int readyWorkers_ = 0;
};

} // namespace nsbench::serve

#endif // NSBENCH_SERVE_SERVER_HH
