#include "serve/presets.hh"

#include "workloads/nvsa.hh"
#include "workloads/prae.hh"
#include "workloads/vsait.hh"
#include "workloads/zeroc.hh"

namespace nsbench::serve
{

std::unique_ptr<core::Workload>
serveFactory(const std::string &name)
{
    using namespace nsbench::workloads;
    if (name == "NVSA") {
        NvsaConfig config;
        config.hvDim = 256;
        config.episodes = 1;
        return std::make_unique<NvsaWorkload>(config);
    }
    if (name == "PrAE") {
        PraeConfig config;
        config.episodes = 1;
        return std::make_unique<PraeWorkload>(config);
    }
    if (name == "VSAIT") {
        VsaitConfig config;
        config.episodes = 1;
        return std::make_unique<VsaitWorkload>(config);
    }
    if (name == "ZeroC") {
        ZerocConfig config;
        config.episodes = 1;
        return std::make_unique<ZerocWorkload>(config);
    }
    return core::WorkloadRegistry::global().create(name);
}

} // namespace nsbench::serve
