/**
 * @file
 * Serving SLO metrics: latency tails, throughput counters, phase split.
 *
 * One thread-safe ServerMetrics instance per Server accumulates the
 * outcome of every request — admissions, rejections by cause, expiry,
 * completions with end-to-end latency, queue wait, service time and
 * the profiler's neural/symbolic split — per workload and in total.
 * Latency tails (p50/p95/p99) come from util::TailStats streaming
 * estimators, so the accounting is O(1) per request no matter how
 * long the server runs.
 */

#ifndef NSBENCH_SERVE_METRICS_HH
#define NSBENCH_SERVE_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "serve/request.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace nsbench::serve
{

/**
 * Aggregated outcome counters and latency accumulators for one
 * workload (or the all-workloads total). Plain value type; snapshots
 * are copies.
 */
struct WorkloadMetrics
{
    /**
     * Every request that reached submit(): admissions plus every
     * rejection. Offered load is the correct denominator for
     * acceptance/goodput math — `completed` must never be divided by
     * a window that silently includes queue-full rejects.
     */
    uint64_t offered = 0;
    uint64_t submitted = 0;          ///< Admitted into the queue.
    uint64_t completed = 0;          ///< Finished with status Ok.
    uint64_t rejectedQueueFull = 0;  ///< Backpressure rejections.
    uint64_t rejectedDeadline = 0;   ///< Dead-on-arrival rejections.
    uint64_t rejectedShutdown = 0;   ///< Rejected while draining.
    uint64_t rejectedUnknown = 0;    ///< Unknown-workload rejections.
    uint64_t rejectedOverload = 0;   ///< Shed by the overload gate.
    uint64_t rejectedUnreachable = 0;///< No reachable server (net layer).
    uint64_t expired = 0;            ///< Admitted but expired in queue.
    uint64_t canceled = 0;           ///< Abandoned by the submitter
                                     ///< and pruned before execution.
    uint64_t failed = 0;             ///< Failed after every retry.
    uint64_t executions = 0;         ///< Actual run() invocations.
    uint64_t batches = 0;            ///< Batches dispatched.
    uint64_t cacheHits = 0;          ///< Result-cache hits at admission.
    uint64_t cacheMisses = 0;        ///< Result-cache misses.
    uint64_t cacheEvictions = 0;     ///< Result-cache entries evicted.
    uint64_t singleFlightShared = 0; ///< Followers fanned a leader's result.
    uint64_t workerFaults = 0;       ///< run() attempts that threw.
    uint64_t retries = 0;            ///< Re-attempts after a fault.
    uint64_t retriedOk = 0;          ///< Completions that needed a retry.
    uint64_t staleServed = 0;        ///< Cache fallbacks after failure.
    uint64_t replicasReplaced = 0;   ///< Supervisor replica rebuilds.
    uint64_t callbackFailures = 0;   ///< Client callbacks that threw.
    uint64_t sojournSheds = 0;       ///< Overload sheds triggered by
                                     ///< the adaptive sojourn gate (a
                                     ///< subset of rejectedOverload).

    util::TailStats latency;         ///< End-to-end seconds (Ok only).
    util::RunningStat queueWait;     ///< Submit -> execution start.
    util::RunningStat service;       ///< run() wall seconds/execution.
    util::RunningStat batchOccupancy;///< Requests per dispatched batch.
    double neuralSeconds = 0.0;      ///< Summed neural-phase op time.
    double symbolicSeconds = 0.0;    ///< Summed symbolic-phase op time.

    /** Total admission-time rejections. */
    uint64_t
    rejected() const
    {
        return rejectedQueueFull + rejectedDeadline +
               rejectedShutdown + rejectedUnknown +
               rejectedOverload + rejectedUnreachable;
    }

    /**
     * Fraction of requests that reached execution and eventually
     * completed (Ok, including stale fallbacks): 1.0 means the
     * resilience layer absorbed every injected fault.
     */
    double
    successRate() const
    {
        uint64_t finished = completed + failed;
        return finished ? static_cast<double>(completed) /
                              static_cast<double>(finished)
                        : 1.0;
    }

    /**
     * Completions served without their own run(): requests the
     * batcher coalesced onto a shared execution.
     */
    uint64_t
    coalesced() const
    {
        return completed > executions ? completed - executions : 0;
    }

    /** Completions per execution; 1.0 when nothing coalesced. */
    double
    shareFactor() const
    {
        return executions
                   ? static_cast<double>(completed) /
                         static_cast<double>(executions)
                   : 0.0;
    }

    /** Neural fraction of attributed phase time. */
    double
    neuralFraction() const
    {
        double total = neuralSeconds + symbolicSeconds;
        return total > 0.0 ? neuralSeconds / total : 0.0;
    }

    /** Result-cache hit fraction of all lookups; 0 when uncached. */
    double
    cacheHitRate() const
    {
        uint64_t lookups = cacheHits + cacheMisses;
        return lookups ? static_cast<double>(cacheHits) /
                             static_cast<double>(lookups)
                       : 0.0;
    }
};

/**
 * Connection-level counters of the TCP front end (src/net/). These
 * are transport facts, not per-workload outcomes, so they live next
 * to — not inside — the WorkloadMetrics aggregates; the net layer
 * folds them into the same ServerMetrics instance so one snapshot
 * captures the whole serving picture. Lock-free atomics: the byte
 * counters sit on the read/write hot path of every connection.
 */
struct NetStats
{
    uint64_t connectionsAccepted = 0; ///< Sockets accepted.
    uint64_t connectionsClosed = 0;   ///< Sockets closed (any cause).
    uint64_t bytesRead = 0;           ///< Payload bytes received.
    uint64_t bytesWritten = 0;        ///< Payload bytes sent.
    uint64_t framesIn = 0;            ///< Well-formed frames decoded.
    uint64_t framesOut = 0;           ///< Frames encoded and queued.
    uint64_t malformedFrames = 0;     ///< Protocol violations seen.
    uint64_t handshakeFailures = 0;   ///< Bad magic/version Hellos.
};

/**
 * Thread-safe metrics sink shared by the admission path, the batcher
 * and the workers.
 */
class ServerMetrics
{
  public:
    /** Notes an admitted request. */
    void recordAdmitted(const std::string &workload);

    /** Notes an admission-time rejection of the given kind. */
    void recordRejected(const std::string &workload,
                        RequestStatus status);

    /** Notes a dispatched batch of @p occupancy requests. */
    void recordBatch(const std::string &workload, size_t occupancy);

    /** Notes one run() execution taking @p serviceSeconds. */
    void recordExecution(const std::string &workload,
                         double serviceSeconds);

    /** Notes a completion (Ok or Expired) with its response record. */
    void recordOutcome(const std::string &workload,
                       const Response &response);

    /** Notes one run() attempt that threw (injected or real). */
    void recordWorkerFault(const std::string &workload);

    /** Notes one re-attempt after a faulted run(). */
    void recordRetry(const std::string &workload);

    /** Notes a supervisor replica rebuild after a poisoned run. */
    void recordReplicaReplaced(const std::string &workload);

    /** Notes a client callback that threw (contained by the server). */
    void recordCallbackFailure(const std::string &workload);

    /** Notes an overload shed decided by the adaptive sojourn gate
     *  (recordRejected still counts the rejection itself). */
    void recordSojournShed(const std::string &workload);

    /** Notes a result-cache hit served at admission. */
    void recordCacheHit(const std::string &workload);

    /** Notes a result-cache miss. */
    void recordCacheMiss(const std::string &workload);

    /** Notes @p n entries evicted while caching a result. */
    void recordCacheEvictions(const std::string &workload, uint64_t n);

    /** Notes @p n followers fanned a single-flight leader's result. */
    void recordSingleFlight(const std::string &workload, uint64_t n);

    /** Notes an accepted TCP connection (net front end). */
    void recordNetAccept();

    /** Notes a closed TCP connection. */
    void recordNetClose();

    /** Notes @p n payload bytes read off sockets. */
    void recordNetBytesRead(uint64_t n);

    /** Notes @p n payload bytes written to sockets. */
    void recordNetBytesWritten(uint64_t n);

    /** Notes one well-formed frame decoded. */
    void recordNetFrameIn();

    /** Notes one frame encoded toward a client. */
    void recordNetFrameOut();

    /** Notes a malformed frame (the connection gets closed). */
    void recordNetMalformed();

    /** Notes a handshake rejected for bad magic or version. */
    void recordNetHandshakeFailure();

    /** Snapshot of one workload's aggregates (zeroes if unseen). */
    WorkloadMetrics workload(const std::string &name) const;

    /** Snapshot of the all-workloads total. */
    WorkloadMetrics total() const;

    /** Snapshot of every per-workload aggregate. */
    std::map<std::string, WorkloadMetrics> byWorkload() const;

    /** Clears all aggregates (between load-sweep operating points). */
    void reset();

    /**
     * Renders the standard serve report: one row per workload plus a
     * total row — counts, share factor, latency tails in
     * milliseconds, and the neural/symbolic split.
     */
    util::Table table() const;

    /**
     * Renders the resilience report: faults absorbed, retries, stale
     * fallbacks, terminal failures, overload sheds, replica
     * replacements and contained callback exceptions per workload.
     */
    util::Table resilienceTable() const;

    /** True when any resilience counter is nonzero (worth printing). */
    bool hasResilienceEvents() const;

    /** Snapshot of the TCP front end's connection counters. */
    NetStats netStats() const;

    /** True when the server saw any network traffic at all. */
    bool hasNetActivity() const;

    /**
     * Renders the network report: connections, payload bytes and
     * frames in each direction, malformed frames and handshake
     * rejections.
     */
    util::Table netTable() const;

  private:
    mutable std::mutex mu_;
    std::map<std::string, WorkloadMetrics> perWorkload_;
    WorkloadMetrics total_;
    /** Net counters are atomics, not under mu_: they tick on every
     *  socket read/write and must never contend with outcome
     *  recording. reset() zeroes them too. */
    std::atomic<uint64_t> netAccepted_{0};
    std::atomic<uint64_t> netClosed_{0};
    std::atomic<uint64_t> netBytesRead_{0};
    std::atomic<uint64_t> netBytesWritten_{0};
    std::atomic<uint64_t> netFramesIn_{0};
    std::atomic<uint64_t> netFramesOut_{0};
    std::atomic<uint64_t> netMalformed_{0};
    std::atomic<uint64_t> netHandshakeFailures_{0};
};

} // namespace nsbench::serve

#endif // NSBENCH_SERVE_METRICS_HH
