#include "serve/metrics.hh"

#include "util/format.hh"

namespace nsbench::serve
{

const char *
statusName(RequestStatus status)
{
    switch (status) {
    case RequestStatus::Ok:
        return "ok";
    case RequestStatus::RejectedQueueFull:
        return "rejected_queue_full";
    case RequestStatus::RejectedDeadline:
        return "rejected_deadline";
    case RequestStatus::RejectedShutdown:
        return "rejected_shutdown";
    case RequestStatus::RejectedUnknownWorkload:
        return "rejected_unknown_workload";
    case RequestStatus::RejectedOverload:
        return "rejected_overload";
    case RequestStatus::Expired:
        return "expired";
    case RequestStatus::Failed:
        return "failed";
    case RequestStatus::RejectedUnreachable:
        return "rejected_unreachable";
    case RequestStatus::Canceled:
        return "canceled";
    }
    return "unknown";
}

void
ServerMetrics::recordAdmitted(const std::string &workload)
{
    std::lock_guard<std::mutex> lock(mu_);
    perWorkload_[workload].offered++;
    perWorkload_[workload].submitted++;
    total_.offered++;
    total_.submitted++;
}

void
ServerMetrics::recordRejected(const std::string &workload,
                              RequestStatus status)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto bump = [status](WorkloadMetrics &m) {
        m.offered++;
        switch (status) {
        case RequestStatus::RejectedQueueFull:
            m.rejectedQueueFull++;
            break;
        case RequestStatus::RejectedDeadline:
            m.rejectedDeadline++;
            break;
        case RequestStatus::RejectedShutdown:
            m.rejectedShutdown++;
            break;
        case RequestStatus::RejectedUnknownWorkload:
            m.rejectedUnknown++;
            break;
        case RequestStatus::RejectedOverload:
            m.rejectedOverload++;
            break;
        case RequestStatus::RejectedUnreachable:
            m.rejectedUnreachable++;
            break;
        default:
            break;
        }
    };
    bump(perWorkload_[workload]);
    bump(total_);
}

void
ServerMetrics::recordBatch(const std::string &workload,
                           size_t occupancy)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto add = [occupancy](WorkloadMetrics &m) {
        m.batches++;
        m.batchOccupancy.add(static_cast<double>(occupancy));
    };
    add(perWorkload_[workload]);
    add(total_);
}

void
ServerMetrics::recordExecution(const std::string &workload,
                               double serviceSeconds)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto add = [serviceSeconds](WorkloadMetrics &m) {
        m.executions++;
        m.service.add(serviceSeconds);
    };
    add(perWorkload_[workload]);
    add(total_);
}

void
ServerMetrics::recordOutcome(const std::string &workload,
                             const Response &response)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto add = [&response](WorkloadMetrics &m) {
        if (response.status == RequestStatus::Expired) {
            m.expired++;
            return;
        }
        if (response.status == RequestStatus::Canceled) {
            m.canceled++;
            return;
        }
        if (response.status == RequestStatus::Failed) {
            m.failed++;
            return;
        }
        if (isRejection(response.status))
            return; // Fanned-out leader failure; counted at record.
        m.completed++;
        // retries are counted at the attempt (recordRetry) so they
        // cover requests that later expire or fail too; here only
        // note that this completion needed at least one.
        if (response.retries > 0)
            m.retriedOk++;
        if (response.stale)
            m.staleServed++;
        m.latency.add(response.latencySeconds);
        m.queueWait.add(response.queueSeconds);
        // Shared executions attribute their phase split once per
        // member divided by the share count, so the per-workload sums
        // stay one-profiler-pass exact.
        double share = response.shared > 0
                           ? 1.0 / static_cast<double>(response.shared)
                           : 1.0;
        m.neuralSeconds += response.neuralSeconds * share;
        m.symbolicSeconds += response.symbolicSeconds * share;
    };
    add(perWorkload_[workload]);
    add(total_);
}

void
ServerMetrics::recordWorkerFault(const std::string &workload)
{
    std::lock_guard<std::mutex> lock(mu_);
    perWorkload_[workload].workerFaults++;
    total_.workerFaults++;
}

void
ServerMetrics::recordRetry(const std::string &workload)
{
    std::lock_guard<std::mutex> lock(mu_);
    perWorkload_[workload].retries++;
    total_.retries++;
}

void
ServerMetrics::recordReplicaReplaced(const std::string &workload)
{
    std::lock_guard<std::mutex> lock(mu_);
    perWorkload_[workload].replicasReplaced++;
    total_.replicasReplaced++;
}

void
ServerMetrics::recordCallbackFailure(const std::string &workload)
{
    std::lock_guard<std::mutex> lock(mu_);
    perWorkload_[workload].callbackFailures++;
    total_.callbackFailures++;
}

void
ServerMetrics::recordSojournShed(const std::string &workload)
{
    std::lock_guard<std::mutex> lock(mu_);
    perWorkload_[workload].sojournSheds++;
    total_.sojournSheds++;
}

void
ServerMetrics::recordCacheHit(const std::string &workload)
{
    std::lock_guard<std::mutex> lock(mu_);
    perWorkload_[workload].cacheHits++;
    total_.cacheHits++;
}

void
ServerMetrics::recordCacheMiss(const std::string &workload)
{
    std::lock_guard<std::mutex> lock(mu_);
    perWorkload_[workload].cacheMisses++;
    total_.cacheMisses++;
}

void
ServerMetrics::recordCacheEvictions(const std::string &workload,
                                    uint64_t n)
{
    if (n == 0)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    perWorkload_[workload].cacheEvictions += n;
    total_.cacheEvictions += n;
}

void
ServerMetrics::recordSingleFlight(const std::string &workload,
                                  uint64_t n)
{
    if (n == 0)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    perWorkload_[workload].singleFlightShared += n;
    total_.singleFlightShared += n;
}

void
ServerMetrics::recordNetAccept()
{
    netAccepted_.fetch_add(1, std::memory_order_relaxed);
}

void
ServerMetrics::recordNetClose()
{
    netClosed_.fetch_add(1, std::memory_order_relaxed);
}

void
ServerMetrics::recordNetBytesRead(uint64_t n)
{
    netBytesRead_.fetch_add(n, std::memory_order_relaxed);
}

void
ServerMetrics::recordNetBytesWritten(uint64_t n)
{
    netBytesWritten_.fetch_add(n, std::memory_order_relaxed);
}

void
ServerMetrics::recordNetFrameIn()
{
    netFramesIn_.fetch_add(1, std::memory_order_relaxed);
}

void
ServerMetrics::recordNetFrameOut()
{
    netFramesOut_.fetch_add(1, std::memory_order_relaxed);
}

void
ServerMetrics::recordNetMalformed()
{
    netMalformed_.fetch_add(1, std::memory_order_relaxed);
}

void
ServerMetrics::recordNetHandshakeFailure()
{
    netHandshakeFailures_.fetch_add(1, std::memory_order_relaxed);
}

NetStats
ServerMetrics::netStats() const
{
    NetStats stats;
    stats.connectionsAccepted =
        netAccepted_.load(std::memory_order_relaxed);
    stats.connectionsClosed =
        netClosed_.load(std::memory_order_relaxed);
    stats.bytesRead = netBytesRead_.load(std::memory_order_relaxed);
    stats.bytesWritten =
        netBytesWritten_.load(std::memory_order_relaxed);
    stats.framesIn = netFramesIn_.load(std::memory_order_relaxed);
    stats.framesOut = netFramesOut_.load(std::memory_order_relaxed);
    stats.malformedFrames =
        netMalformed_.load(std::memory_order_relaxed);
    stats.handshakeFailures =
        netHandshakeFailures_.load(std::memory_order_relaxed);
    return stats;
}

bool
ServerMetrics::hasNetActivity() const
{
    NetStats stats = netStats();
    return stats.connectionsAccepted || stats.bytesRead ||
           stats.bytesWritten;
}

util::Table
ServerMetrics::netTable() const
{
    NetStats stats = netStats();
    util::Table table({"conns", "closed", "bytes in", "bytes out",
                       "frames in", "frames out", "malformed",
                       "bad hello"});
    table.addRow({std::to_string(stats.connectionsAccepted),
                  std::to_string(stats.connectionsClosed),
                  util::humanBytes(stats.bytesRead),
                  util::humanBytes(stats.bytesWritten),
                  std::to_string(stats.framesIn),
                  std::to_string(stats.framesOut),
                  std::to_string(stats.malformedFrames),
                  std::to_string(stats.handshakeFailures)});
    return table;
}

WorkloadMetrics
ServerMetrics::workload(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = perWorkload_.find(name);
    return it == perWorkload_.end() ? WorkloadMetrics{} : it->second;
}

WorkloadMetrics
ServerMetrics::total() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return total_;
}

std::map<std::string, WorkloadMetrics>
ServerMetrics::byWorkload() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return perWorkload_;
}

void
ServerMetrics::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    perWorkload_.clear();
    total_ = WorkloadMetrics{};
    netAccepted_.store(0, std::memory_order_relaxed);
    netClosed_.store(0, std::memory_order_relaxed);
    netBytesRead_.store(0, std::memory_order_relaxed);
    netBytesWritten_.store(0, std::memory_order_relaxed);
    netFramesIn_.store(0, std::memory_order_relaxed);
    netFramesOut_.store(0, std::memory_order_relaxed);
    netMalformed_.store(0, std::memory_order_relaxed);
    netHandshakeFailures_.store(0, std::memory_order_relaxed);
}

util::Table
ServerMetrics::table() const
{
    auto snapshot = byWorkload();
    WorkloadMetrics totals = total();

    util::Table table({"workload", "done", "rej", "exp", "runs",
                       "share", "batch", "hit%", "sf", "p50 ms",
                       "p95 ms", "p99 ms", "mean ms", "wait ms",
                       "neural"});
    auto ms = [](double seconds) {
        return util::fixedStr(seconds * 1e3, 2);
    };
    auto row = [&](const std::string &name,
                   const WorkloadMetrics &m) {
        table.addRow({name, std::to_string(m.completed),
                      std::to_string(m.rejected()),
                      std::to_string(m.expired),
                      std::to_string(m.executions),
                      util::fixedStr(m.shareFactor(), 2),
                      util::fixedStr(m.batchOccupancy.mean(), 2),
                      util::percentStr(m.cacheHitRate()),
                      std::to_string(m.singleFlightShared),
                      ms(m.latency.p50()), ms(m.latency.p95()),
                      ms(m.latency.p99()), ms(m.latency.mean()),
                      ms(m.queueWait.mean()),
                      util::percentStr(m.neuralFraction())});
    };
    for (const auto &[name, m] : snapshot)
        row(name, m);
    if (snapshot.size() > 1)
        row("TOTAL", totals);
    return table;
}

bool
ServerMetrics::hasResilienceEvents() const
{
    WorkloadMetrics totals = total();
    return totals.workerFaults || totals.retries ||
           totals.staleServed || totals.failed ||
           totals.rejectedOverload || totals.replicasReplaced ||
           totals.callbackFailures || totals.canceled ||
           totals.sojournSheds;
}

util::Table
ServerMetrics::resilienceTable() const
{
    auto snapshot = byWorkload();
    WorkloadMetrics totals = total();

    util::Table table({"workload", "faults", "retries", "retried_ok",
                       "stale", "failed", "shed", "soj_shed",
                       "canceled", "replaced", "cb_err", "success%"});
    auto row = [&](const std::string &name,
                   const WorkloadMetrics &m) {
        table.addRow({name, std::to_string(m.workerFaults),
                      std::to_string(m.retries),
                      std::to_string(m.retriedOk),
                      std::to_string(m.staleServed),
                      std::to_string(m.failed),
                      std::to_string(m.rejectedOverload),
                      std::to_string(m.sojournSheds),
                      std::to_string(m.canceled),
                      std::to_string(m.replicasReplaced),
                      std::to_string(m.callbackFailures),
                      util::percentStr(m.successRate())});
    };
    for (const auto &[name, m] : snapshot)
        row(name, m);
    if (snapshot.size() > 1)
        row("TOTAL", totals);
    return table;
}

} // namespace nsbench::serve
