/**
 * @file
 * Built-in load generator for the serving runtime.
 *
 * Two driving disciplines, matching the standard serving-evaluation
 * methodology:
 *
 *  - Open loop: a single dispatcher thread submits requests on a
 *    Poisson arrival process at a configured offered rate,
 *    independent of completions — the discipline that exposes
 *    queueing delay and tail latency under overload.
 *  - Closed loop: N client threads each keep exactly one request in
 *    flight, submitting the next the moment the previous completes —
 *    the discipline that measures sustainable throughput.
 *
 * Request seeds draw from a bounded seed universe under an optional
 * Zipf popularity skew, modelling the repeated-query locality that
 * makes coalescing effective for seed-sensitive workloads; the
 * workload of each request draws from a configurable mix.
 */

#ifndef NSBENCH_SERVE_LOADGEN_HH
#define NSBENCH_SERVE_LOADGEN_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "serve/server.hh"

namespace nsbench::serve
{

/** Load-generation knobs. */
struct LoadgenOptions
{
    bool openLoop = true;        ///< Poisson arrivals vs closed loop.
    double rateHz = 200.0;       ///< Offered rate (open loop only).
    int clients = 4;             ///< In-flight requests (closed loop).
    double durationSeconds = 2.0;///< Submission window length.
    uint64_t seed = 1;           ///< Generator seed (determinism).
    /** Distinct episode seeds drawn from; 0 -> every request unique. */
    uint64_t seedUniverse = 64;
    /** Zipf popularity exponent over the universe; 0 -> uniform. */
    double zipfExponent = 1.1;
    /** Per-request deadline in milliseconds; 0 -> none. */
    double deadlineMs = 0.0;
    /**
     * Workload mix as (name, weight) pairs; empty -> uniform over the
     * server's workloads.
     */
    std::vector<std::pair<std::string, double>> mix;
};

/** Aggregate outcome of one load-generation window. */
struct LoadgenReport
{
    double wallSeconds = 0.0;  ///< Submission window + drain time.
    uint64_t submitted = 0;    ///< submit() calls issued.
    uint64_t admitted = 0;     ///< Requests the server accepted.
    uint64_t completed = 0;    ///< Callbacks with status Ok.
    uint64_t expired = 0;      ///< Callbacks with status Expired.
    uint64_t rejected = 0;     ///< Admission-time rejections.
    double offeredRate = 0.0;  ///< submitted / window seconds.

    /** Completed requests per wall second. */
    double
    throughput() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(completed) / wallSeconds
                   : 0.0;
    }
};

/**
 * Drives @p server with the configured load, waits for every admitted
 * request to complete, and returns the aggregate report. Latency
 * tails accumulate in the server's own metrics.
 */
LoadgenReport runLoadgen(Server &server,
                         const LoadgenOptions &options);

} // namespace nsbench::serve

#endif // NSBENCH_SERVE_LOADGEN_HH
