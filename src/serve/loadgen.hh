/**
 * @file
 * Built-in load generator for the serving runtime.
 *
 * Two driving disciplines, matching the standard serving-evaluation
 * methodology:
 *
 *  - Open loop: a single dispatcher thread submits requests on a
 *    Poisson arrival process at a configured offered rate,
 *    independent of completions — the discipline that exposes
 *    queueing delay and tail latency under overload.
 *  - Closed loop: N client threads each keep exactly one request in
 *    flight, submitting the next the moment the previous completes —
 *    the discipline that measures sustainable throughput.
 *
 * Request seeds draw from a bounded seed universe under an optional
 * Zipf popularity skew, modelling the repeated-query locality that
 * makes coalescing effective for seed-sensitive workloads; the
 * workload of each request draws from a configurable mix.
 */

#ifndef NSBENCH_SERVE_LOADGEN_HH
#define NSBENCH_SERVE_LOADGEN_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "serve/server.hh"
#include "util/rng.hh"

namespace nsbench::serve
{

/**
 * Samples seeds from a bounded universe with Zipf popularity skew:
 * rank r (1-based) is drawn with probability proportional to r^-s.
 * Precomputes the CDF once; each sample is a binary search. Public
 * so its empirical rank frequencies are unit-testable — the result
 * cache's hit rate is only as real as this distribution.
 */
class ZipfSeedSampler
{
  public:
    ZipfSeedSampler(uint64_t universe, double exponent)
        : universe_(universe)
    {
        if (universe_ == 0 || exponent <= 0.0)
            return;
        cdf_.reserve(universe_);
        double total = 0.0;
        for (uint64_t rank = 1; rank <= universe_; ++rank) {
            total += std::pow(static_cast<double>(rank), -exponent);
            cdf_.push_back(total);
        }
        for (double &c : cdf_)
            c /= total;
    }

    /** Draws the next seed; @p fallback numbers unique requests. */
    uint64_t
    sample(util::Rng &rng, uint64_t fallback) const
    {
        if (universe_ == 0)
            return fallback;
        if (cdf_.empty())
            return static_cast<uint64_t>(rng.uniformInt(
                0, static_cast<int64_t>(universe_) - 1));
        double u = rng.uniformDouble();
        auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
        return static_cast<uint64_t>(it - cdf_.begin());
    }

  private:
    uint64_t universe_;
    std::vector<double> cdf_;
};

/**
 * What the load generator drives: anything that accepts serve
 * requests and answers each admitted one with exactly one callback.
 * Two implementations matter — an in-process serve::Server (the
 * ServerTarget adapter below) and a server in another process behind
 * the wire protocol (net::RemoteTarget). The interface mirrors
 * Server's submit/call contract exactly: a non-Ok submit return means
 * the callback will never fire.
 */
class LoadTarget
{
  public:
    virtual ~LoadTarget() = default;

    /** Workload names requests may draw from (the default mix). */
    virtual std::vector<std::string> servedWorkloads() const = 0;

    /** Async submit; callback fires exactly once iff this returns Ok. */
    virtual RequestStatus submit(const std::string &workload,
                                 uint64_t seed, Callback done,
                                 TimePoint deadline) = 0;

    /** Blocking convenience wrapper: submit and wait for completion. */
    virtual Response call(const std::string &workload, uint64_t seed,
                          TimePoint deadline) = 0;
};

/** LoadTarget over an in-process serve::Server. */
class ServerTarget : public LoadTarget
{
  public:
    explicit ServerTarget(Server &server) : server_(server) {}

    std::vector<std::string>
    servedWorkloads() const override
    {
        return server_.workloads();
    }

    RequestStatus
    submit(const std::string &workload, uint64_t seed, Callback done,
           TimePoint deadline) override
    {
        return server_.submit(workload, seed, std::move(done),
                              deadline);
    }

    Response
    call(const std::string &workload, uint64_t seed,
         TimePoint deadline) override
    {
        return server_.call(workload, seed, deadline);
    }

  private:
    Server &server_;
};

/** Load-generation knobs. */
struct LoadgenOptions
{
    bool openLoop = true;        ///< Poisson arrivals vs closed loop.
    double rateHz = 200.0;       ///< Offered rate (open loop only).
    int clients = 4;             ///< In-flight requests (closed loop).
    double durationSeconds = 2.0;///< Submission window length.
    uint64_t seed = 1;           ///< Generator seed (determinism).
    /** Distinct episode seeds drawn from; 0 -> every request unique. */
    uint64_t seedUniverse = 64;
    /** Zipf popularity exponent over the universe; 0 -> uniform. */
    double zipfExponent = 1.1;
    /** Per-request deadline in milliseconds; 0 -> none. */
    double deadlineMs = 0.0;
    /**
     * Workload mix as (name, weight) pairs; empty -> uniform over the
     * server's workloads.
     */
    std::vector<std::pair<std::string, double>> mix;
};

/** Aggregate outcome of one load-generation window. */
struct LoadgenReport
{
    double wallSeconds = 0.0;  ///< Submission window + drain time.
    uint64_t submitted = 0;    ///< submit() calls issued.
    uint64_t admitted = 0;     ///< Requests the server accepted.
    uint64_t completed = 0;    ///< Callbacks with status Ok.
    uint64_t expired = 0;      ///< Callbacks with status Expired.
    uint64_t failed = 0;       ///< Callbacks with status Failed.
    uint64_t rejected = 0;     ///< Admission-time rejections.
    double offeredRate = 0.0;  ///< submitted / window seconds.

    /** Completed requests per wall second. */
    double
    throughput() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(completed) / wallSeconds
                   : 0.0;
    }
};

/**
 * Drives @p target with the configured load, waits for every admitted
 * request to complete, and returns the aggregate report. For an
 * in-process server, latency tails accumulate in the server's own
 * metrics; a remote target keeps its own client-side tails.
 */
LoadgenReport runLoadgen(LoadTarget &target,
                         const LoadgenOptions &options);

/** Convenience overload for the in-process case. */
LoadgenReport runLoadgen(Server &server,
                         const LoadgenOptions &options);

} // namespace nsbench::serve

#endif // NSBENCH_SERVE_LOADGEN_HH
