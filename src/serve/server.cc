#include "serve/server.hh"

#include <algorithm>
#include <chrono>
#include <future>
#include <map>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/profiler.hh"
#include "exec/pipeline.hh"
#include "util/failpoint.hh"
#include "util/logging.hh"
#include "util/threadpool.hh"
#include "util/timer.hh"

namespace nsbench::serve
{

namespace
{

namespace fp = util::failpoints;

/** Default replica factory: the process-global workload registry. */
std::unique_ptr<core::Workload>
registryFactory(const std::string &name)
{
    return core::WorkloadRegistry::global().create(name);
}

/** Injected transient run() failure: retried in place. */
struct FaultInjected : std::runtime_error
{
    FaultInjected() : std::runtime_error("injected run fault") {}
};

/** Injected replica poison: the supervisor rebuilds the replica. */
struct ReplicaPoisoned : std::runtime_error
{
    ReplicaPoisoned() : std::runtime_error("injected replica poison")
    {}
};

/** Exponential backoff for retry @p attempt (1-based), shift-capped. */
std::chrono::microseconds
backoffFor(int64_t base_us, int attempt)
{
    int shift = std::min(attempt - 1, 10);
    return std::chrono::microseconds(base_us << shift);
}

} // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      admission_(options_.queueCapacity),
      batches_(options_.batchQueueCapacity
                   ? options_.batchQueueCapacity
                   : 2 * static_cast<size_t>(
                             options_.workers > 0 ? options_.workers
                                                  : 1))
{
    util::panicIf(options_.workloads.empty(),
                  "Server: no workloads to serve");
    util::panicIf(options_.workers <= 0,
                  "Server: need at least one worker");
    if (!options_.factory)
        options_.factory = registryFactory;

    if (options_.resultCache) {
        cache::ResultCacheOptions cacheOptions;
        cacheOptions.maxBytes = options_.cacheBytes;
        cacheOptions.shards = options_.cacheShards;
        cache_ =
            std::make_unique<cache::ResultCache>(cacheOptions);
        // Probe each workload's seed sensitivity once: insensitive
        // workloads fold every episode seed onto one cache entry.
        // Construction is cheap (setUp is where the cost lives).
        for (const auto &name : options_.workloads) {
            auto probe = options_.factory(name);
            util::panicIf(!probe,
                          "Server: factory returned null for " +
                              name);
            seedSensitive_[name] = probe->seedSensitive();
        }
    }

    batcher_ = std::make_unique<Batcher>(
        admission_, batches_, options_.maxBatch,
        std::chrono::microseconds(options_.maxWaitUs), metrics_);
    batcherThread_ = std::thread([this] { batcher_->run(); });

    workers_.reserve(static_cast<size_t>(options_.workers));
    for (int i = 0; i < options_.workers; ++i)
        workers_.emplace_back([this, i] { workerMain(i); });

    // Block until every worker finished pre-warming its replicas so
    // the first request never observes setUp latency.
    std::unique_lock<std::mutex> lock(readyMu_);
    readyCv_.wait(lock, [this] {
        return readyWorkers_ == options_.workers;
    });
}

Server::~Server() { shutdown(); }

RequestStatus
Server::submit(const std::string &workload, uint64_t seed,
               Callback done, TimePoint deadline, CancelToken cancel)
{
    bool known = false;
    for (const auto &name : options_.workloads)
        if (name == workload) {
            known = true;
            break;
        }
    if (!known) {
        metrics_.recordRejected(workload,
                                RequestStatus::RejectedUnknownWorkload);
        return RequestStatus::RejectedUnknownWorkload;
    }
    if (stopping_.load(std::memory_order_acquire)) {
        metrics_.recordRejected(workload,
                                RequestStatus::RejectedShutdown);
        return RequestStatus::RejectedShutdown;
    }

    Request request;
    request.id = nextId_.fetch_add(1, std::memory_order_relaxed);
    request.workload = workload;
    request.seed = seed;
    request.enqueue = ServeClock::now();
    request.deadline = deadline;
    request.done = std::move(done);
    request.cancel = std::move(cancel);

    if (deadline <= request.enqueue) {
        metrics_.recordRejected(workload,
                                RequestStatus::RejectedDeadline);
        return RequestStatus::RejectedDeadline;
    }

    std::string key;
    if (cache_) {
        // Seed-insensitive workloads score identically for every
        // episode seed; canonicalise onto seed 0 so all of them share
        // one entry.
        key = cache::ResultCache::keyString(
            workload, options_.modelSeed,
            seedSensitive_.at(workload) ? seed : 0);
        double score = 0.0;
        if (options_.cacheAdmissionLookup &&
            cache_->lookup(key, &score)) {
            metrics_.recordCacheHit(workload);
            metrics_.recordAdmitted(workload);
            Response response;
            response.status = RequestStatus::Ok;
            response.score = score;
            response.cached = true;
            response.shared = 1;
            response.latencySeconds = secondsBetween(
                request.enqueue, ServeClock::now());
            metrics_.recordOutcome(workload, response);
            deliver(workload, request.done, response);
            return RequestStatus::Ok;
        }
        if (options_.cacheAdmissionLookup)
            metrics_.recordCacheMiss(workload);

        // Single-flight: park this request behind an in-flight miss
        // on the same key; the leader's completion fans out to it.
        Flight flight;
        flight.id = request.id;
        flight.enqueue = request.enqueue;
        flight.deadline = request.deadline;
        flight.done = request.done;
        if (flights_.join(key, std::move(flight)) ==
            cache::SingleFlight<Flight>::Role::Follower)
            return RequestStatus::Ok;

        // Leader: wrap the callback so completion (or queue expiry)
        // caches the score and releases the followers.
        Callback inner = std::move(request.done);
        request.done = [this, workload, key,
                        inner](const Response &response) {
            finishFlight(workload, key, inner, response);
        };
    }

    // Overload gate: shed before the queue is hard-full so waits stay
    // bounded and the rejection is distinguishable from backpressure.
    // The failpoint forces a shed regardless of occupancy.
    bool shed = false;
    if (options_.shedAtOccupancy > 0.0) {
        auto limit = static_cast<size_t>(
            options_.shedAtOccupancy *
            static_cast<double>(admission_.capacity()));
        if (admission_.size() >= std::max<size_t>(limit, 1))
            shed = true;
    }
    // Adaptive gate: shed when queue *delay* (not depth) has stayed
    // over the target — the short-but-slow-queue overload mode.
    if (!shed && options_.targetSojournUs > 0 &&
        sojournOverloaded(request.enqueue)) {
        shed = true;
        metrics_.recordSojournShed(workload);
    }
    if (NSBENCH_FAILPOINT(fp::sites::kAdmissionShed))
        shed = true;

    if (shed || !admission_.tryPush(std::move(request))) {
        // tryPush fails both on a full queue and on a closed one;
        // closure means a shutdown raced this submit.
        RequestStatus status =
            shed ? RequestStatus::RejectedOverload
                 : admission_.closed()
                       ? RequestStatus::RejectedShutdown
                       : RequestStatus::RejectedQueueFull;
        metrics_.recordRejected(workload, status);
        if (cache_)
            abortFlight(workload, key, status);
        return status;
    }
    metrics_.recordAdmitted(workload);
    return RequestStatus::Ok;
}

void
Server::deliver(const std::string &workload, const Callback &done,
                const Response &response)
{
    if (!done)
        return;
    try {
        done(response);
        // Chaos site: the callback throws *after* its side effects
        // (models user code that records the result, then dies) —
        // the exactly-once delivery already happened; what's under
        // test is that the worker thread survives it.
        if (NSBENCH_FAILPOINT(fp::sites::kCallback))
            throw FaultInjected();
    } catch (...) {
        metrics_.recordCallbackFailure(workload);
    }
}

void
Server::finishFlight(const std::string &workload,
                     const std::string &key, const Callback &inner,
                     const Response &response)
{
    if (response.status == RequestStatus::Ok) {
        uint64_t evicted = cache_->insert(key, response.score);
        metrics_.recordCacheEvictions(workload, evicted);
    }
    // Insert-then-finish: a request arriving in between hits the
    // fresh cache entry directly, so nobody can join a dead flight.
    std::vector<Flight> waiters = flights_.finish(key);
    deliver(workload, inner, response);
    if (waiters.empty())
        return;
    metrics_.recordSingleFlight(workload, waiters.size());

    TimePoint now = ServeClock::now();
    for (Flight &waiter : waiters) {
        Response fanned = response;
        // The follower shares the leader's execution but not its
        // timeline; phase seconds are zeroed so the leader's
        // share-divided attribution stays one-pass exact.
        fanned.shared = 1;
        fanned.neuralSeconds = 0.0;
        fanned.symbolicSeconds = 0.0;
        fanned.latencySeconds = secondsBetween(waiter.enqueue, now);
        fanned.queueSeconds =
            std::max(0.0, fanned.latencySeconds -
                              fanned.serviceSeconds);
        if (fanned.status == RequestStatus::Ok &&
            waiter.deadline <= now) {
            fanned.status = RequestStatus::Expired;
            fanned.queueSeconds = fanned.latencySeconds;
        }
        metrics_.recordAdmitted(workload);
        metrics_.recordOutcome(workload, fanned);
        deliver(workload, waiter.done, fanned);
    }
}

void
Server::abortFlight(const std::string &workload,
                    const std::string &key, RequestStatus status)
{
    std::vector<Flight> waiters = flights_.finish(key);
    TimePoint now = ServeClock::now();
    for (Flight &waiter : waiters) {
        metrics_.recordRejected(workload, status);
        Response rejected;
        rejected.status = status;
        rejected.latencySeconds = secondsBetween(waiter.enqueue, now);
        deliver(workload, waiter.done, rejected);
    }
}

Response
Server::call(const std::string &workload, uint64_t seed,
             TimePoint deadline)
{
    auto promise = std::make_shared<std::promise<Response>>();
    auto future = promise->get_future();
    RequestStatus status = submit(
        workload, seed,
        [promise](const Response &r) { promise->set_value(r); },
        deadline);
    if (status != RequestStatus::Ok) {
        Response rejected;
        rejected.status = status;
        return rejected;
    }
    return future.get();
}

void
Server::shutdown()
{
    stopping_.store(true, std::memory_order_release);
    admission_.close();
    if (joined_.exchange(true))
        return;
    // The batcher drains the admission queue, flushes its pending
    // batches and closes the batch queue; the workers then drain the
    // batch queue and exit. Every admitted request completes.
    if (batcherThread_.joinable())
        batcherThread_.join();
    for (auto &worker : workers_)
        if (worker.joinable())
            worker.join();
}

void
Server::noteSojourn(int64_t sojournUs)
{
    // EWMA with alpha = 1/8 over dispatch-time queue waits. A relaxed
    // CAS loop keeps the estimate exact enough for a shed gate while
    // staying off any lock the hot path shares.
    int64_t prev = sojournEwmaUs_.load(std::memory_order_relaxed);
    int64_t next;
    do {
        next = prev - prev / 8 + sojournUs / 8;
        // First sample seeds the estimate so a cold server does not
        // take eight batches to notice a stuck queue.
        if (prev == 0)
            next = sojournUs;
    } while (!sojournEwmaUs_.compare_exchange_weak(
        prev, next, std::memory_order_relaxed));
}

bool
Server::sojournOverloaded(TimePoint now)
{
    int64_t ewma = sojournEwmaUs_.load(std::memory_order_relaxed);
    int64_t now_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            now.time_since_epoch())
            .count();
    if (ewma <= options_.targetSojournUs) {
        sojournAboveSinceUs_.store(0, std::memory_order_relaxed);
        return false;
    }
    int64_t since =
        sojournAboveSinceUs_.load(std::memory_order_relaxed);
    if (since == 0) {
        // Racing submitters may both store; either timestamp is a
        // valid "first seen above" within the gate's tolerance.
        sojournAboveSinceUs_.store(now_us, std::memory_order_relaxed);
        return false;
    }
    return now_us - since >= options_.sojournGraceUs;
}

void
Server::workerMain(int workerIndex)
{
    (void)workerIndex;
    // Serve requests single-threaded on this worker: all parallelFor
    // kernels run inline, so concurrent workers never contend on the
    // shared pool and the per-request op stream stays on this thread.
    util::ThreadPool::SerialScope serial;

    std::map<std::string, Replica> replicas;
    for (const auto &name : options_.workloads) {
        Replica replica;
        replica.workload = options_.factory(name);
        util::panicIf(!replica.workload,
                      "Server: factory returned null for " + name);
        {
            // Pre-warm under the replica's own profiler so setUp
            // allocations never pollute the process-global one.
            core::Profiler::ThreadTargetScope target(replica.profiler);
            replica.workload->setUp(options_.modelSeed);
            core::Profiler::flushThisThread();
        }
        replicas.emplace(name, std::move(replica));
    }

    {
        std::lock_guard<std::mutex> lock(readyMu_);
        readyWorkers_++;
    }
    readyCv_.notify_all();

    while (auto batch = batches_.pop())
        runBatchOn(replicas, *batch);
}

void
Server::runBatchOn(std::map<std::string, Replica> &replicas,
                   const Batch &batch)
{
    auto it = replicas.find(batch.workload);
    util::panicIf(it == replicas.end(),
                  "Server: batch for unserved workload " +
                      batch.workload);
    Replica &replica = it->second;
    const int batchSize = static_cast<int>(batch.requests.size());

    // Feed the adaptive shed gate: the batch's mean queue sojourn is
    // one EWMA sample (per-request folding would just weight bursts).
    if (options_.targetSojournUs > 0 && batchSize > 0) {
        TimePoint dispatch = ServeClock::now();
        int64_t total_us = 0;
        for (const Request &request : batch.requests)
            total_us +=
                std::chrono::duration_cast<std::chrono::microseconds>(
                    dispatch - request.enqueue)
                    .count();
        noteSojourn(total_us / batchSize);
    }

    // Group the batch into executions. Coalescing folds requests with
    // the same effective seed onto one shared run(); seed-insensitive
    // workloads ignore the seed entirely, so their whole batch is one
    // group. With coalescing off every request runs alone, in arrival
    // order. (No reference to *replica.workload is cached across
    // attempts — the supervisor may swap the replica mid-group.)
    const bool seedMatters = replica.workload->seedSensitive();
    std::vector<std::pair<uint64_t, std::vector<const Request *>>>
        groups;
    if (options_.coalesce) {
        std::map<uint64_t, size_t> index;
        for (const Request &request : batch.requests) {
            uint64_t key = seedMatters ? request.seed : 0;
            auto found = index.find(key);
            if (found == index.end()) {
                index.emplace(key, groups.size());
                groups.push_back({request.seed, {&request}});
            } else {
                groups[found->second].second.push_back(&request);
            }
        }
    } else {
        for (const Request &request : batch.requests)
            groups.push_back({request.seed, {&request}});
    }

    // Intra-replica stage pipelining: with pipelineDepth set, a
    // staged workload, and at least two executions to overlap, run
    // every group through the stage pipeline up front — one pipeline
    // episode per group, seeded with that group's seed — and deliver
    // the scores from the per-group loop below. Byte-identity with
    // the serial path is the staged-interface contract (enforced by
    // the pipeline test tier). Skipped while fault injection is
    // armed: the serial loop owns the retry / replica-replacement /
    // stale-fallback semantics, and routing executions through extra
    // threads would perturb the deterministic fault schedule.
    const int stageCount = replica.workload->stageCount();
    std::vector<double> pipeScore, pipeService;
    std::vector<double> pipeNeural, pipeSymbolic;
    bool pipelined = false;
    TimePoint pipeStart{};
    if (options_.pipelineDepth > 0 && groups.size() >= 2 &&
        stageCount > 1 && !fp::armed()) {
        std::vector<uint64_t> seeds;
        seeds.reserve(groups.size());
        for (const auto &group : groups)
            seeds.push_back(group.first);
        exec::PipelineOptions pipeOptions;
        pipeOptions.depth = options_.pipelineDepth;
        // Stage timers are enough here: the neural/symbolic split is
        // attributed stage-granularly from StageSpec below, without
        // paying per-op profiling on the serving path.
        pipeOptions.collectProfiles = false;
        pipeStart = ServeClock::now();
        try {
            exec::PipelineResult piped = exec::runPipelined(
                *replica.workload, seeds, pipeOptions);
            pipeScore = piped.scores;
            pipeService.assign(groups.size(), 0.0);
            pipeNeural.assign(groups.size(), 0.0);
            pipeSymbolic.assign(groups.size(), 0.0);
            for (size_t g = 0; g < groups.size(); g++) {
                const auto &stageDt = piped.episodeStageSeconds[g];
                for (int s = 0; s < stageCount; s++) {
                    double dt = stageDt[static_cast<size_t>(s)];
                    pipeService[g] += dt;
                    switch (piped.stages[static_cast<size_t>(s)]
                                .phase) {
                    case core::Phase::Neural:
                        pipeNeural[g] += dt;
                        break;
                    case core::Phase::Symbolic:
                        pipeSymbolic[g] += dt;
                        break;
                    default:
                        break;
                    }
                }
            }
            pipelined = true;
        } catch (...) {
            // No faults are armed, so a stage failure is a real
            // workload error; the serial loop below re-runs every
            // group and applies the normal failure handling to it.
        }
    }

    for (size_t groupIndex = 0; groupIndex < groups.size();
         groupIndex++) {
        auto &[seed, members] = groups[groupIndex];
        // Complete queue-expired and canceled members without running
        // them; the retry loop re-prunes after each backoff so a long
        // outage never runs work whose deadline already passed or
        // whose submitter already gave up (a losing hedge).
        TimePoint start = ServeClock::now();
        std::vector<const Request *> live(members.begin(),
                                          members.end());
        auto pruneExpired = [&](TimePoint now) {
            std::vector<const Request *> keep;
            keep.reserve(live.size());
            for (const Request *request : live) {
                bool canceled =
                    request->cancel &&
                    request->cancel->load(std::memory_order_relaxed);
                if (!canceled && request->deadline > now) {
                    keep.push_back(request);
                    continue;
                }
                Response pruned;
                pruned.status = canceled ? RequestStatus::Canceled
                                         : RequestStatus::Expired;
                pruned.latencySeconds =
                    secondsBetween(request->enqueue, now);
                pruned.queueSeconds = pruned.latencySeconds;
                pruned.batchSize = batchSize;
                metrics_.recordOutcome(batch.workload, pruned);
                deliver(batch.workload, request->done, pruned);
            }
            live.swap(keep);
        };
        pruneExpired(start);
        if (live.empty())
            continue;

        if (pipelined) {
            // The group already executed in the pipeline pre-pass;
            // deliver its score with the same accounting as the
            // serial success path. Queue time ends when the pipeline
            // started, since that is when execution began.
            metrics_.recordExecution(batch.workload,
                                     pipeService[groupIndex]);
            TimePoint end = ServeClock::now();
            for (const Request *request : live) {
                Response response;
                response.status = RequestStatus::Ok;
                response.score = pipeScore[groupIndex];
                response.latencySeconds =
                    secondsBetween(request->enqueue, end);
                response.queueSeconds =
                    secondsBetween(request->enqueue, pipeStart);
                response.serviceSeconds = pipeService[groupIndex];
                response.neuralSeconds = pipeNeural[groupIndex];
                response.symbolicSeconds = pipeSymbolic[groupIndex];
                response.batchSize = batchSize;
                response.shared = static_cast<int>(live.size());
                response.pipelined = true;
                metrics_.recordOutcome(batch.workload, response);
                deliver(batch.workload, request->done, response);
            }
            continue;
        }

        double score = 0.0;
        double service = 0.0;
        double neural = 0.0;
        double symbolic = 0.0;
        // One run() attempt on the current replica. Must be re-entered
        // through replica.workload (not a cached reference): a
        // poisoned attempt may have swapped in a fresh replica.
        auto executeOnce = [&] {
            core::Profiler::ThreadTargetScope target(replica.profiler);
            if (options_.profilePhases) {
                // reset() also makes this worker the profiler's
                // owner, so every inline-executed op applies directly.
                replica.profiler.reset();
            } else {
                replica.profiler.setEnabled(false);
            }
            if (seedMatters)
                replica.workload->reseedEpisodes(seed);
            util::WallTimer timer;
            try {
                // A firing delay site sleeps in evaluate() and
                // returns false: the stall lands inside the measured
                // service time — the slow-not-dead shard the tail
                // layer (breaker + hedging) exists to route around.
                NSBENCH_FAILPOINT(fp::sites::kWorkerDelay);
                if (NSBENCH_FAILPOINT(fp::sites::kWorkerCrash))
                    throw ReplicaPoisoned();
                if (NSBENCH_FAILPOINT(fp::sites::kWorkerRun))
                    throw FaultInjected();
                score = replica.workload->run();
            } catch (...) {
                // Drain the aborted attempt's op buffer while this
                // scope still targets the replica profiler, so the
                // next attempt's phase split starts clean.
                core::Profiler::flushThisThread();
                throw;
            }
            service = timer.elapsed();
            core::Profiler::flushThisThread();
            if (options_.profilePhases) {
                neural = replica.profiler
                             .phaseTotals(core::Phase::Neural)
                             .seconds;
                symbolic = replica.profiler
                               .phaseTotals(core::Phase::Symbolic)
                               .seconds;
            }
        };

        // Bounded retry with exponential backoff. A poisoned replica
        // is rebuilt by the supervisor before the next attempt; a
        // transient fault retries on the replica as-is.
        int attempts = 0;
        bool succeeded = false;
        while (true) {
            try {
                executeOnce();
                succeeded = true;
                break;
            } catch (const ReplicaPoisoned &) {
                metrics_.recordWorkerFault(batch.workload);
                rebuildReplica(batch.workload, replica);
            } catch (...) {
                metrics_.recordWorkerFault(batch.workload);
            }
            if (attempts >= options_.maxRetries)
                break;
            attempts++;
            metrics_.recordRetry(batch.workload);
            std::this_thread::sleep_for(
                backoffFor(options_.retryBackoffUs, attempts));
            pruneExpired(ServeClock::now());
            if (live.empty())
                break;
        }
        if (live.empty())
            continue;

        if (succeeded) {
            metrics_.recordExecution(batch.workload, service);
            TimePoint end = ServeClock::now();
            for (const Request *request : live) {
                Response response;
                response.status = RequestStatus::Ok;
                response.score = score;
                response.latencySeconds =
                    secondsBetween(request->enqueue, end);
                response.queueSeconds =
                    secondsBetween(request->enqueue, start);
                response.serviceSeconds = service;
                response.neuralSeconds = neural;
                response.symbolicSeconds = symbolic;
                response.batchSize = batchSize;
                response.shared = static_cast<int>(live.size());
                response.retries = attempts;
                metrics_.recordOutcome(batch.workload, response);
                deliver(batch.workload, request->done, response);
            }
            continue;
        }

        // Out of retries. Serve-stale fallback: answer from the last
        // cached score for this key (byte-exact by the determinism
        // contract, but marked stale — the mechanism is generic).
        // Without a cached entry the requests fail terminally; either
        // way every live member gets exactly one callback.
        double staleScore = 0.0;
        bool haveStale = false;
        if (cache_ && options_.staleFallback) {
            std::string key = cache::ResultCache::keyString(
                batch.workload, options_.modelSeed,
                seedMatters ? seed : 0);
            haveStale = cache_->lookup(key, &staleScore);
        }
        TimePoint end = ServeClock::now();
        for (const Request *request : live) {
            Response response;
            response.latencySeconds =
                secondsBetween(request->enqueue, end);
            response.queueSeconds =
                secondsBetween(request->enqueue, start);
            response.batchSize = batchSize;
            response.retries = attempts;
            if (haveStale) {
                response.status = RequestStatus::Ok;
                response.score = staleScore;
                response.cached = true;
                response.stale = true;
                response.shared = static_cast<int>(live.size());
            } else {
                response.status = RequestStatus::Failed;
            }
            metrics_.recordOutcome(batch.workload, response);
            deliver(batch.workload, request->done, response);
        }
    }
}

void
Server::rebuildReplica(const std::string &name, Replica &replica)
{
    Replica fresh;
    fresh.workload = options_.factory(name);
    util::panicIf(!fresh.workload,
                  "Server: factory returned null for " + name);
    bool built = false;
    {
        core::Profiler::ThreadTargetScope target(fresh.profiler);
        try {
            fresh.workload->setUp(options_.modelSeed);
            built = true;
        } catch (...) {
            // Build-then-swap: a failed rebuild (setUp can itself hit
            // an injected fault) keeps the old replica in place; the
            // retry loop decides what happens to the batch.
        }
        core::Profiler::flushThisThread();
    }
    if (!built)
        return;
    replica = std::move(fresh);
    metrics_.recordReplicaReplaced(name);
}

} // namespace nsbench::serve
