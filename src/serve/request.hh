/**
 * @file
 * Request/response types of the serving runtime.
 *
 * A request names a workload, carries the seed of the episode stream
 * it wants evaluated, and optionally a completion deadline. The
 * response reports the score plus the latency decomposition the
 * paper's serving analysis needs: end-to-end latency, queue wait,
 * service time, and the profiler's neural/symbolic phase split.
 */

#ifndef NSBENCH_SERVE_REQUEST_HH
#define NSBENCH_SERVE_REQUEST_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace nsbench::serve
{

/** Monotonic clock all serving timestamps use. */
using ServeClock = std::chrono::steady_clock;

/** A time point on the serving clock. */
using TimePoint = ServeClock::time_point;

/** Sentinel deadline meaning "no deadline". */
inline TimePoint
noDeadline()
{
    return TimePoint::max();
}

/** Terminal state of a request. */
enum class RequestStatus
{
    Ok,                     ///< Executed; the response carries a score.
    RejectedQueueFull,      ///< Backpressure: admission queue was full.
    RejectedDeadline,       ///< Deadline already expired at admission.
    RejectedShutdown,       ///< Server draining or stopped.
    RejectedUnknownWorkload,///< Workload not served by this server.
    RejectedOverload,       ///< Shed at admission by the overload gate.
    Expired,                ///< Admitted, but the deadline passed in queue.
    Failed,                 ///< Execution failed after every retry.
    /**
     * The network layer could not reach a server at all: a remote
     * submit failed to connect (after the client's reconnect
     * attempts), or a router found every backend down. Counted as an
     * admission-time rejection — the request never entered a queue.
     */
    RejectedUnreachable,
    /**
     * The submitter abandoned the request while it was queued (a
     * hedged duplicate lost its race) and the server pruned it before
     * execution. A terminal post-admission outcome like Expired, not
     * an admission rejection: the callback still fires exactly once,
     * with this status. Appended last so earlier statuses keep their
     * wire numbering across protocol versions.
     */
    Canceled,
};

/** Short stable name for reports and CSV. */
const char *statusName(RequestStatus status);

/** True for the admission-time rejection statuses. */
inline bool
isRejection(RequestStatus status)
{
    return status == RequestStatus::RejectedQueueFull ||
           status == RequestStatus::RejectedDeadline ||
           status == RequestStatus::RejectedShutdown ||
           status == RequestStatus::RejectedUnknownWorkload ||
           status == RequestStatus::RejectedOverload ||
           status == RequestStatus::RejectedUnreachable;
}

/**
 * Completion record delivered to the request's callback. For Ok
 * responses every field is set; Expired responses carry timing but
 * no score. Requests rejected at submit() never reach a callback
 * (submit reports the rejection synchronously) — with one exception:
 * a request admitted as a single-flight follower (submit returned
 * Ok) receives a rejection-status response through its callback if
 * its leader subsequently failed admission.
 */
struct Response
{
    RequestStatus status = RequestStatus::Ok;
    double score = 0.0;          ///< Workload score; pure in (model, seed).
    double latencySeconds = 0.0; ///< Submit -> completion.
    double queueSeconds = 0.0;   ///< Submit -> execution start.
    double serviceSeconds = 0.0; ///< run() wall time of the execution.
    double neuralSeconds = 0.0;  ///< Profiler neural-phase op time.
    double symbolicSeconds = 0.0;///< Profiler symbolic-phase op time.
    int batchSize = 0;           ///< Requests in the executed batch.
    int shared = 0;              ///< Requests sharing this execution.
    bool cached = false;         ///< Served from the result cache.
    bool stale = false;          ///< Cache fallback after a failed run.
    bool pipelined = false;      ///< Ran in a stage-pipelined batch.
    int retries = 0;             ///< Failed attempts before this outcome.
};

/** Completion callback; invoked exactly once per admitted request. */
using Callback = std::function<void(const Response &)>;

/**
 * Shared cancellation flag. The submitter creates it, passes it to
 * submit(), and may set it at any time afterwards; workers check it
 * when they pick the request up and answer Canceled instead of
 * running it. Advisory: a request already executing (or served from
 * cache, or parked as a single-flight follower) completes normally.
 */
using CancelToken = std::shared_ptr<std::atomic<bool>>;

/** One admitted in-flight request. */
struct Request
{
    uint64_t id = 0;
    std::string workload;
    uint64_t seed = 0;
    TimePoint enqueue{};
    TimePoint deadline = TimePoint::max();
    Callback done;
    CancelToken cancel; ///< Null when the request is not cancelable.
};

/** A batcher-coalesced group of same-workload requests. */
struct Batch
{
    std::string workload;
    std::vector<Request> requests;
};

/** Seconds between two serve-clock points. */
inline double
secondsBetween(TimePoint from, TimePoint to)
{
    return std::chrono::duration<double>(to - from).count();
}

} // namespace nsbench::serve

#endif // NSBENCH_SERVE_REQUEST_HH
