#include "serve/loadgen.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "util/logging.hh"
#include "util/rng.hh"
#include "util/timer.hh"

namespace nsbench::serve
{

namespace
{

/** The Zipf sampler lives in loadgen.hh so tests can reach it. */
using SeedSampler = ZipfSeedSampler;

/** Samples workload names from the configured mix. */
class MixSampler
{
  public:
    MixSampler(const LoadTarget &target,
               const LoadgenOptions &options)
    {
        if (options.mix.empty()) {
            names_ = target.servedWorkloads();
            weights_.assign(names_.size(), 1.0);
        } else {
            for (const auto &[name, weight] : options.mix) {
                util::panicIf(weight <= 0.0,
                              "loadgen: mix weight must be positive");
                names_.push_back(name);
                weights_.push_back(weight);
            }
        }
        util::panicIf(names_.empty(), "loadgen: empty workload mix");
    }

    const std::string &
    sample(util::Rng &rng) const
    {
        if (names_.size() == 1)
            return names_.front();
        return names_[rng.categorical(weights_)];
    }

  private:
    std::vector<std::string> names_;
    std::vector<double> weights_;
};

/** Shared completion accounting for one loadgen window. */
struct Tracker
{
    std::mutex mu;
    std::condition_variable cv;
    uint64_t outstanding = 0;
    std::atomic<uint64_t> completed{0};
    std::atomic<uint64_t> expired{0};
    std::atomic<uint64_t> failed{0};

    Callback
    makeCallback()
    {
        {
            std::lock_guard<std::mutex> lock(mu);
            outstanding++;
        }
        return [this](const Response &response) {
            if (response.status == RequestStatus::Ok)
                completed.fetch_add(1, std::memory_order_relaxed);
            else if (response.status == RequestStatus::Failed)
                failed.fetch_add(1, std::memory_order_relaxed);
            else
                expired.fetch_add(1, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(mu);
            outstanding--;
            if (outstanding == 0)
                cv.notify_all();
        };
    }

    void
    drain()
    {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [this] { return outstanding == 0; });
    }

    /** Un-counts a callback whose submit was rejected. */
    void
    cancel()
    {
        std::lock_guard<std::mutex> lock(mu);
        outstanding--;
        if (outstanding == 0)
            cv.notify_all();
    }
};

TimePoint
deadlineFor(const LoadgenOptions &options)
{
    if (options.deadlineMs <= 0.0)
        return noDeadline();
    return ServeClock::now() +
           std::chrono::microseconds(static_cast<int64_t>(
               options.deadlineMs * 1000.0));
}

LoadgenReport
runOpenLoop(LoadTarget &target, const LoadgenOptions &options)
{
    util::Rng rng(options.seed);
    SeedSampler seeds(options.seedUniverse, options.zipfExponent);
    MixSampler mix(target, options);
    Tracker tracker;
    LoadgenReport report;

    util::panicIf(options.rateHz <= 0.0,
                  "loadgen: open loop needs a positive rate");
    util::WallTimer wall;
    TimePoint start = ServeClock::now();
    TimePoint windowEnd =
        start + std::chrono::microseconds(static_cast<int64_t>(
                    options.durationSeconds * 1e6));
    // Poisson process: exponential inter-arrival gaps at rateHz,
    // scheduled against absolute times so submit cost never skews the
    // offered rate.
    TimePoint next = start;
    while (next < windowEnd) {
        std::this_thread::sleep_until(next);
        const std::string &workload = mix.sample(rng);
        uint64_t seed = seeds.sample(rng, report.submitted);
        Callback done = tracker.makeCallback();
        RequestStatus status = target.submit(
            workload, seed, std::move(done), deadlineFor(options));
        report.submitted++;
        if (status == RequestStatus::Ok) {
            report.admitted++;
        } else {
            report.rejected++;
            tracker.cancel();
        }
        double gap = -std::log(1.0 - rng.uniformDouble()) /
                     options.rateHz;
        next += std::chrono::microseconds(
            static_cast<int64_t>(gap * 1e6));
    }

    tracker.drain();
    report.wallSeconds = wall.elapsed();
    report.completed = tracker.completed.load();
    report.expired = tracker.expired.load();
    report.failed = tracker.failed.load();
    report.offeredRate = options.durationSeconds > 0.0
                             ? static_cast<double>(report.submitted) /
                                   options.durationSeconds
                             : 0.0;
    return report;
}

LoadgenReport
runClosedLoop(LoadTarget &target, const LoadgenOptions &options)
{
    util::panicIf(options.clients <= 0,
                  "loadgen: closed loop needs at least one client");
    SeedSampler seeds(options.seedUniverse, options.zipfExponent);
    MixSampler mix(target, options);
    LoadgenReport report;

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> submitted{0};
    std::atomic<uint64_t> admitted{0};
    std::atomic<uint64_t> completed{0};
    std::atomic<uint64_t> expired{0};
    std::atomic<uint64_t> failed{0};
    std::atomic<uint64_t> rejected{0};

    util::WallTimer wall;
    std::vector<std::thread> clients;
    clients.reserve(static_cast<size_t>(options.clients));
    for (int c = 0; c < options.clients; ++c) {
        clients.emplace_back([&, c] {
            util::Rng rng(options.seed +
                          0x9E3779B97F4A7C15ULL *
                              static_cast<uint64_t>(c + 1));
            while (!stop.load(std::memory_order_acquire)) {
                const std::string &workload = mix.sample(rng);
                uint64_t unique =
                    submitted.fetch_add(1, std::memory_order_relaxed);
                uint64_t seed = seeds.sample(rng, unique);
                Response response = target.call(
                    workload, seed, deadlineFor(options));
                switch (response.status) {
                case RequestStatus::Ok:
                    admitted.fetch_add(1);
                    completed.fetch_add(1);
                    break;
                case RequestStatus::Expired:
                    admitted.fetch_add(1);
                    expired.fetch_add(1);
                    break;
                case RequestStatus::Failed:
                    admitted.fetch_add(1);
                    failed.fetch_add(1);
                    break;
                default:
                    rejected.fetch_add(1);
                    break;
                }
            }
        });
    }

    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(
            options.durationSeconds * 1e6)));
    stop.store(true, std::memory_order_release);
    for (auto &client : clients)
        client.join();

    report.wallSeconds = wall.elapsed();
    report.submitted = submitted.load();
    report.admitted = admitted.load();
    report.completed = completed.load();
    report.expired = expired.load();
    report.failed = failed.load();
    report.rejected = rejected.load();
    report.offeredRate = options.durationSeconds > 0.0
                             ? static_cast<double>(report.submitted) /
                                   options.durationSeconds
                             : 0.0;
    return report;
}

} // namespace

LoadgenReport
runLoadgen(LoadTarget &target, const LoadgenOptions &options)
{
    return options.openLoop ? runOpenLoop(target, options)
                            : runClosedLoop(target, options);
}

LoadgenReport
runLoadgen(Server &server, const LoadgenOptions &options)
{
    ServerTarget target(server);
    return runLoadgen(target, options);
}

} // namespace nsbench::serve
