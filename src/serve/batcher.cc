#include "serve/batcher.hh"

#include <utility>

#include "util/failpoint.hh"
#include "util/logging.hh"

namespace nsbench::serve
{

Batcher::Batcher(BoundedQueue<Request> &in, BoundedQueue<Batch> &out,
                 int maxBatch, std::chrono::microseconds maxWait,
                 ServerMetrics &metrics)
    : in_(in), out_(out), maxBatch_(maxBatch), maxWait_(maxWait),
      metrics_(metrics)
{
    util::panicIf(maxBatch <= 0,
                  "Batcher: maxBatch must be positive");
}

void
Batcher::run()
{
    for (;;) {
        std::optional<Request> request;
        if (pending_.empty()) {
            request = in_.pop();
        } else {
            request = in_.popUntil(nextFlushAt());
        }

        if (request)
            admit(std::move(*request));

        flushDue(ServeClock::now());

        if (!request && in_.drained()) {
            flushAll();
            out_.close();
            return;
        }
    }
}

void
Batcher::admit(Request request)
{
    Pending &pending = pending_[request.workload];
    if (pending.requests.empty())
        pending.flushAt = ServeClock::now() + maxWait_;
    pending.requests.push_back(std::move(request));
    // Chaos site: dispatch the batch before it fills. Coalescing
    // degrades (smaller batches, lower share factor) but every
    // request still ships — a graceful-degradation fault.
    if (static_cast<int>(pending.requests.size()) >= maxBatch_ ||
        NSBENCH_FAILPOINT(
            util::failpoints::sites::kBatcherCoalesce)) {
        auto node = pending_.extract(
            pending_.find(pending.requests.front().workload));
        dispatch(node.key(), node.mapped());
    }
}

void
Batcher::flushDue(TimePoint now)
{
    for (auto it = pending_.begin(); it != pending_.end();) {
        if (it->second.flushAt <= now) {
            auto node = pending_.extract(it++);
            dispatch(node.key(), node.mapped());
        } else {
            ++it;
        }
    }
}

void
Batcher::flushAll()
{
    for (auto &[workload, pending] : pending_)
        dispatch(workload, pending);
    pending_.clear();
}

void
Batcher::dispatch(const std::string &workload, Pending &pending)
{
    metrics_.recordBatch(workload, pending.requests.size());
    Batch batch;
    batch.workload = workload;
    batch.requests = std::move(pending.requests);
    // push blocks when the workers fall behind: backpressure flows
    // from the workers through the batcher into the admission queue.
    out_.push(std::move(batch));
}

TimePoint
Batcher::nextFlushAt() const
{
    TimePoint earliest = noDeadline();
    for (const auto &[workload, pending] : pending_)
        if (pending.flushAt < earliest)
            earliest = pending.flushAt;
    return earliest;
}

} // namespace nsbench::serve
