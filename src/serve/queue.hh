/**
 * @file
 * The bounded MPMC queue under the serving runtime.
 *
 * A mutex-and-condvar ring with a hard capacity. Admission control
 * builds on tryPush (full queue -> reject, never block the client);
 * the batcher and workers build on the blocking pop family. close()
 * starts a graceful drain: pushes fail immediately, pops keep
 * returning queued items until the queue is empty and only then
 * report exhaustion, so nothing admitted is ever dropped.
 */

#ifndef NSBENCH_SERVE_QUEUE_HH
#define NSBENCH_SERVE_QUEUE_HH

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "serve/request.hh"
#include "util/failpoint.hh"
#include "util/logging.hh"

namespace nsbench::serve
{

/**
 * Bounded multi-producer multi-consumer FIFO queue.
 */
template <typename T>
class BoundedQueue
{
  public:
    /** @param capacity Maximum queued items; must be positive. */
    explicit BoundedQueue(size_t capacity) : capacity_(capacity)
    {
        util::panicIf(capacity == 0,
                      "BoundedQueue: capacity must be positive");
    }

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;

    /**
     * Enqueues without blocking. Returns false when the queue is full
     * or closed (the admission-control rejection path).
     */
    bool
    tryPush(T item)
    {
        // Chaos site: a transient "full" answer — the caller's
        // admission-control rejection path fires without the queue
        // actually filling, and nothing is enqueued or lost.
        if (NSBENCH_FAILPOINT(util::failpoints::sites::kQueueTryPush))
            return false;
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (closed_ || items_.size() >= capacity_)
                return false;
            items_.push_back(std::move(item));
        }
        canPop_.notify_one();
        return true;
    }

    /**
     * Enqueues, blocking while the queue is full. Returns false when
     * the queue is (or becomes) closed — internal backpressure
     * between the batcher and the workers.
     */
    bool
    push(T item)
    {
        {
            std::unique_lock<std::mutex> lock(mu_);
            canPush_.wait(lock, [&] {
                return closed_ || items_.size() < capacity_;
            });
            if (closed_)
                return false;
            items_.push_back(std::move(item));
        }
        canPop_.notify_one();
        return true;
    }

    /**
     * Dequeues, blocking until an item arrives. Returns nullopt only
     * when the queue is closed *and* drained.
     */
    std::optional<T>
    pop()
    {
        injectStall();
        std::unique_lock<std::mutex> lock(mu_);
        canPop_.wait(lock,
                     [&] { return closed_ || !items_.empty(); });
        return takeLocked(lock);
    }

    /**
     * Dequeues, blocking until an item arrives or @p deadline passes.
     * Returns nullopt on timeout and when closed-and-drained; use
     * drained() to tell the two apart.
     */
    std::optional<T>
    popUntil(TimePoint deadline)
    {
        injectStall();
        std::unique_lock<std::mutex> lock(mu_);
        canPop_.wait_until(lock, deadline, [&] {
            return closed_ || !items_.empty();
        });
        if (items_.empty())
            return std::nullopt;
        return takeLocked(lock);
    }

    /** Dequeues without blocking. */
    std::optional<T>
    tryPop()
    {
        std::unique_lock<std::mutex> lock(mu_);
        if (items_.empty())
            return std::nullopt;
        return takeLocked(lock);
    }

    /**
     * Closes the queue: subsequent pushes fail, pops drain what is
     * already queued. Idempotent.
     */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            closed_ = true;
        }
        canPop_.notify_all();
        canPush_.notify_all();
    }

    /** True once close() has been called. */
    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return closed_;
    }

    /** True when closed and no items remain. */
    bool
    drained() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return closed_ && items_.empty();
    }

    /** Items currently queued. */
    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return items_.size();
    }

    /** The hard capacity. */
    size_t capacity() const { return capacity_; }

  private:
    /**
     * Chaos site: a consumer stall. The blocked time models a worker
     * or batcher hiccup — items are delayed, never dropped, so the
     * close/drain protocol's guarantees are what's under test.
     */
    static void
    injectStall()
    {
        if (NSBENCH_FAILPOINT(util::failpoints::sites::kQueuePop))
            std::this_thread::sleep_for(
                std::chrono::microseconds(200));
    }

    /** Pops the head; mu_ must be held and items_ non-empty. */
    std::optional<T>
    takeLocked(std::unique_lock<std::mutex> &lock)
    {
        if (items_.empty())
            return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        canPush_.notify_one();
        return item;
    }

    mutable std::mutex mu_;
    std::condition_variable canPop_;
    std::condition_variable canPush_;
    std::deque<T> items_;
    size_t capacity_;
    bool closed_ = false;
};

} // namespace nsbench::serve

#endif // NSBENCH_SERVE_QUEUE_HH
