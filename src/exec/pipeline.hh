/**
 * @file
 * Stage-pipelined workload execution (the paper's Recommendation 5,
 * for real).
 *
 * sim/schedule.{hh,cc} *predicts* the win from overlapping neural
 * perception of episode i+1 with symbolic reasoning of episode i;
 * this module builds that overlap on the actual runtime. A workload
 * that implements the staged interface (Workload::stageCount() > 1)
 * runs each stage on its own worker thread, with bounded FIFO queues
 * carrying EpisodeState between consecutive stages, so up to
 * stageCount() episodes are in flight at once.
 *
 * Determinism: the stage-0 worker calls reseedEpisodes(seed_i)
 * immediately before runStage(0) of episode i, and episodes flow
 * through every stage in submission order. Because stage 0 consumes
 * the whole per-episode RNG stream (the staged-interface contract)
 * and later stages are pure in the handed-off state plus immutable
 * model structures, the per-episode scores are byte-identical to a
 * serial reseedEpisodes + run() loop over the same seeds — the
 * tests/exec suite enforces exactly this.
 */

#ifndef NSBENCH_EXEC_PIPELINE_HH
#define NSBENCH_EXEC_PIPELINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/profiler.hh"
#include "core/workload.hh"

namespace nsbench::exec
{

/** Pipelined-execution knobs. */
struct PipelineOptions
{
    /**
     * Capacity of each inter-stage queue. Depth 1 is strict
     * lockstep; larger depths let a fast stage run ahead of a slow
     * one, smoothing per-episode duration jitter at the cost of
     * (depth x episode-state) peak memory per queue. Throughput is
     * bottlenecked by the slowest stage either way.
     */
    int depth = 2;

    /**
     * Collect per-stage operator profiles. Each stage worker owns a
     * private Profiler installed via ThreadTargetScope, so phase and
     * region attribution stays exact per stage; turn this off on
     * latency-sensitive paths (serving) that only need stage timers.
     */
    bool collectProfiles = true;
};

/** One stage's aggregate execution record. */
struct StageReport
{
    std::string name;                        ///< StageSpec name.
    core::Phase phase = core::Phase::Untagged; ///< StageSpec phase.
    double busySeconds = 0.0; ///< Total time inside runStage().
    core::OpStats neural;     ///< Stage-profiler neural totals.
    core::OpStats symbolic;   ///< Stage-profiler symbolic totals.
};

/** Outcome of one pipelined multi-episode execution. */
struct PipelineResult
{
    /** Per-episode scores, in submission order. */
    std::vector<double> scores;
    /** seconds[episode][stage] spent inside that runStage call. */
    std::vector<std::vector<double>> episodeStageSeconds;
    /** End-to-end wall time across all episodes. */
    double wallSeconds = 0.0;
    /** Per-stage aggregates, index = stage. */
    std::vector<StageReport> stages;

    /** Sum of stage busy time — the serial-equivalent work. */
    double busySeconds() const;

    /** Busy time of the slowest stage — the pipeline's floor. */
    double bottleneckSeconds() const;

    /** Measured overlap: serial-equivalent work over wall time. */
    double
    overlapSpeedup() const
    {
        return wallSeconds > 0.0 ? busySeconds() / wallSeconds : 1.0;
    }
};

/** Seed of pipeline episode @p index over @p base (base + index). */
uint64_t episodeSeed(uint64_t base, int index);

/**
 * Runs one episode per entry of @p seeds through the workload's
 * stage pipeline. Works for any workload: single-stage workloads
 * degenerate to a serial loop on one worker thread. Stage workers
 * pin themselves with ThreadPool::SerialScope, so kernels inside
 * runStage execute inline — parallelism comes from stage overlap,
 * not from nested pools. Rethrows the first stage exception after
 * shutting the pipeline down.
 */
PipelineResult runPipelined(core::Workload &workload,
                            const std::vector<uint64_t> &seeds,
                            const PipelineOptions &options = {});

/** Convenience overload: seeds episodeSeed(baseSeed, 0..episodes). */
PipelineResult runPipelined(core::Workload &workload, int episodes,
                            uint64_t baseSeed,
                            const PipelineOptions &options = {});

/**
 * The serial baseline the byte-identity gate compares against: a
 * reseedEpisodes + run() loop over the same seeds on one pinned
 * thread.
 */
std::vector<double>
runSerialEpisodes(core::Workload &workload,
                  const std::vector<uint64_t> &seeds);

/**
 * sim::pipelineSchedule's predicted speedup for a pipeline whose
 * stage s measured @p stageSeconds[s] of busy time across
 * @p episodes episodes. The model gives every stage a dedicated
 * execution unit — exactly the executor's one-thread-per-stage shape
 * — so measured overlapSpeedup() can be compared against it
 * directly (the paper's model-vs-reality payoff).
 */
double predictedSpeedup(const std::vector<double> &stageSeconds,
                        int episodes);

} // namespace nsbench::exec

#endif // NSBENCH_EXEC_PIPELINE_HH
