#include "exec/pipeline.hh"

#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "core/opgraph.hh"
#include "serve/queue.hh"
#include "sim/schedule.hh"
#include "util/logging.hh"
#include "util/threadpool.hh"

namespace nsbench::exec
{

using core::EpisodeState;
using core::Phase;
using core::Profiler;
using core::StageSpec;

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start)
        .count();
}

/** Shared shutdown state: first exception wins, everyone stops. */
struct Abort
{
    std::mutex mu;
    std::exception_ptr error;
    std::atomic<bool> flag{false};

    void
    trip(std::exception_ptr e)
    {
        {
            std::lock_guard<std::mutex> lock(mu);
            if (!error)
                error = e;
        }
        flag.store(true, std::memory_order_release);
    }

    bool
    tripped() const
    {
        return flag.load(std::memory_order_acquire);
    }
};

} // namespace

double
PipelineResult::busySeconds() const
{
    double total = 0.0;
    for (const StageReport &stage : stages)
        total += stage.busySeconds;
    return total;
}

double
PipelineResult::bottleneckSeconds() const
{
    double worst = 0.0;
    for (const StageReport &stage : stages)
        worst = std::max(worst, stage.busySeconds);
    return worst;
}

uint64_t
episodeSeed(uint64_t base, int index)
{
    return base + static_cast<uint64_t>(index);
}

PipelineResult
runPipelined(core::Workload &workload,
             const std::vector<uint64_t> &seeds,
             const PipelineOptions &options)
{
    util::panicIf(seeds.empty(),
                  "runPipelined: need at least one episode");
    util::panicIf(options.depth < 1,
                  "runPipelined: queue depth must be positive");
    int stage_count = workload.stageCount();
    util::panicIf(stage_count < 1,
                  "runPipelined: stageCount() must be positive");

    auto episodes = static_cast<int>(seeds.size());
    PipelineResult result;
    result.scores.assign(seeds.size(), 0.0);
    result.episodeStageSeconds.assign(
        seeds.size(),
        std::vector<double>(static_cast<size_t>(stage_count), 0.0));

    // One private profiler and busy counter per stage; stage workers
    // write disjoint slots, so no locks are needed on the result.
    std::vector<std::unique_ptr<Profiler>> profilers;
    std::vector<double> busy(static_cast<size_t>(stage_count), 0.0);
    for (int s = 0; s < stage_count; s++)
        profilers.push_back(std::make_unique<Profiler>());

    // queues[s] feeds stage s+1.
    using Queue = serve::BoundedQueue<EpisodeState>;
    std::vector<std::unique_ptr<Queue>> queues;
    for (int s = 0; s + 1 < stage_count; s++) {
        queues.push_back(std::make_unique<Queue>(
            static_cast<size_t>(options.depth)));
    }

    Abort abort;
    auto close_all = [&queues] {
        for (auto &queue : queues)
            queue->close();
    };

    auto worker = [&](int stage) {
        // Kernels inside runStage execute inline on this thread;
        // parallelism comes from stage overlap, and profiler
        // attribution stays exact per stage.
        util::ThreadPool::SerialScope serial;
        Profiler &profiler = *profilers[static_cast<size_t>(stage)];
        Profiler::ThreadTargetScope target(profiler);
        profiler.reset(); // take ownership on this thread
        profiler.setEnabled(options.collectProfiles);

        bool last = stage == stage_count - 1;
        auto finish = [&](EpisodeState &&state, double dt) {
            busy[static_cast<size_t>(stage)] += dt;
            result.episodeStageSeconds[static_cast<size_t>(
                state.index)][static_cast<size_t>(stage)] = dt;
            if (last) {
                result.scores[static_cast<size_t>(state.index)] =
                    state.score;
                return true;
            }
            return queues[static_cast<size_t>(stage)]->push(
                std::move(state));
        };

        if (stage == 0) {
            for (int i = 0; i < episodes; i++) {
                if (abort.tripped())
                    break;
                EpisodeState state;
                state.seed = seeds[static_cast<size_t>(i)];
                state.index = i;
                auto start = Clock::now();
                try {
                    workload.reseedEpisodes(state.seed);
                    workload.runStage(0, state);
                } catch (...) {
                    abort.trip(std::current_exception());
                    close_all();
                    break;
                }
                if (!finish(std::move(state), secondsSince(start)))
                    break;
            }
            if (!queues.empty())
                queues[0]->close();
        } else {
            Queue &in = *queues[static_cast<size_t>(stage - 1)];
            while (auto state = in.pop()) {
                if (abort.tripped())
                    break;
                auto start = Clock::now();
                try {
                    workload.runStage(stage, *state);
                } catch (...) {
                    abort.trip(std::current_exception());
                    close_all();
                    break;
                }
                if (!finish(std::move(*state),
                            secondsSince(start)))
                    break;
            }
            if (stage < stage_count - 1)
                queues[static_cast<size_t>(stage)]->close();
        }
        Profiler::flushThisThread();
    };

    auto wall_start = Clock::now();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(stage_count));
    for (int s = 0; s < stage_count; s++)
        threads.emplace_back(worker, s);
    for (std::thread &thread : threads)
        thread.join();
    result.wallSeconds = secondsSince(wall_start);

    if (abort.flag.load())
        std::rethrow_exception(abort.error);

    for (int s = 0; s < stage_count; s++) {
        StageSpec spec = workload.stageSpec(s);
        StageReport report;
        report.name = spec.name;
        report.phase = spec.phase;
        report.busySeconds = busy[static_cast<size_t>(s)];
        if (options.collectProfiles) {
            const Profiler &profiler =
                *profilers[static_cast<size_t>(s)];
            report.neural = profiler.phaseTotals(Phase::Neural);
            report.symbolic = profiler.phaseTotals(Phase::Symbolic);
        }
        result.stages.push_back(std::move(report));
    }
    return result;
}

PipelineResult
runPipelined(core::Workload &workload, int episodes,
             uint64_t baseSeed, const PipelineOptions &options)
{
    util::panicIf(episodes < 1,
                  "runPipelined: need at least one episode");
    std::vector<uint64_t> seeds;
    seeds.reserve(static_cast<size_t>(episodes));
    for (int i = 0; i < episodes; i++)
        seeds.push_back(episodeSeed(baseSeed, i));
    return runPipelined(workload, seeds, options);
}

std::vector<double>
runSerialEpisodes(core::Workload &workload,
                  const std::vector<uint64_t> &seeds)
{
    util::ThreadPool::SerialScope serial;
    std::vector<double> scores;
    scores.reserve(seeds.size());
    for (uint64_t seed : seeds) {
        workload.reseedEpisodes(seed);
        scores.push_back(workload.run());
    }
    return scores;
}

double
predictedSpeedup(const std::vector<double> &stageSeconds,
                 int episodes)
{
    util::panicIf(stageSeconds.empty(),
                  "predictedSpeedup: need at least one stage");
    util::panicIf(episodes < 1,
                  "predictedSpeedup: need at least one episode");

    // Model the executor exactly: each stage gets a dedicated unit.
    // Stages alternate between the simulator's two unit kinds, with
    // enough units of each kind that same-kind stages never contend
    // — chain dependencies already serialize consecutive stages.
    core::OpGraph graph;
    int neural_units = 0, symbolic_units = 0;
    core::NodeId prev = 0;
    for (size_t s = 0; s < stageSeconds.size(); s++) {
        Phase kind = s % 2 == 0 ? Phase::Neural : Phase::Symbolic;
        if (kind == Phase::Neural)
            neural_units++;
        else
            symbolic_units++;
        core::NodeId id = graph.addNode(
            "stage" + std::to_string(s), kind,
            stageSeconds[s] / static_cast<double>(episodes));
        if (s > 0)
            graph.addEdge(prev, id);
        prev = id;
    }
    sim::ScheduleConfig config;
    config.neuralUnits = std::max(neural_units, 1);
    config.symbolicUnits = std::max(symbolic_units, 1);
    return sim::pipelineSchedule(graph, config, episodes).speedup();
}

} // namespace nsbench::exec
