/**
 * @file
 * Fig. 3a: operator-category runtime breakdown per workload, split
 * into the neural and symbolic halves.
 *
 * Reproduces the paper's six-category partition (convolution, MatMul,
 * vector/element-wise, data transformation, data movement, others):
 * neural halves should be dominated by MatMul/convolution, symbolic
 * halves by vector/element-wise and "others" (logic) operators.
 */

#include <iostream>

#include "common.hh"
#include "core/report.hh"
#include "core/taxonomy.hh"
#include "util/format.hh"
#include "util/table.hh"

int
main()
{
    using namespace nsbench;

    bench::printHeader(
        "Compute-operator runtime breakdown (six categories)",
        "Fig. 3a");

    util::Table table({"workload", "phase", "Conv%", "MatMul%",
                       "VecElem%", "DataTrans%", "DataMove%",
                       "Others%"});

    for (const auto &name : bench::paperOrder()) {
        auto run = bench::profileWorkload(name);
        for (core::Phase phase :
             {core::Phase::Neural, core::Phase::Symbolic}) {
            double phase_total =
                run.profile.phaseTotals(phase).seconds;
            std::vector<std::string> row = {
                name, std::string(core::phaseName(phase))};
            for (core::OpCategory category :
                 core::allOpCategories) {
                double t = run.profile
                               .categoryTotals(phase, category)
                               .seconds;
                row.push_back(util::fixedStr(
                    phase_total > 0 ? 100.0 * t / phase_total : 0.0,
                    1));
            }
            table.addRow(std::move(row));
        }
    }
    table.print(std::cout);

    std::cout
        << "\nTakeaway 3 check: neural rows concentrate in "
           "Conv/MatMul (plus LNN's characteristic data movement); "
           "symbolic rows concentrate in vector/element-wise tensor "
           "ops and 'Others' (logic/rule) operators.\n";
    return 0;
}
