/**
 * @file
 * Thread-scaling curves for the parallel execution runtime.
 *
 * Runs each hot kernel at pool widths 1/2/4/8 and reports wall time
 * and speedup versus the single-threaded run, checking on the way that
 * every parallel result matches the width-1 result (bit-identical for
 * maps, <= 1e-5 relative for float reductions). The final BENCH_JSON
 * line is machine-readable so the perf trajectory of the runtime can
 * be tracked run over run.
 *
 * Not a paper figure: this tracks the reproduction's own runtime,
 * motivated by the co-execution recommendations of Sec. V.
 */

#include <cmath>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common.hh"
#include "core/profiler.hh"
#include "tensor/ops.hh"
#include "util/format.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "util/threadpool.hh"
#include "util/timer.hh"
#include "vsa/codebook.hh"
#include "vsa/ops.hh"

namespace
{

using namespace nsbench;
using tensor::Tensor;

constexpr int kRepeats = 3;

/** One kernel under test: runs once, returns a checksum of results. */
struct Kernel
{
    std::string name;
    std::function<double()> run;
};

/** Best-of-N wall time for one kernel at the current pool width. */
double
timeKernel(const Kernel &kernel, double *checksum)
{
    double best = 0.0;
    for (int r = 0; r < kRepeats; r++) {
        util::WallTimer timer;
        double sum = kernel.run();
        double elapsed = timer.elapsed();
        if (r == 0 || elapsed < best)
            best = elapsed;
        *checksum = sum;
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::printHeader("Parallel runtime thread scaling",
                       "runtime extra (Sec. V co-execution)");

    util::Rng rng(7);

    // Inputs sized so each kernel runs long enough to time reliably
    // but the whole bench stays in seconds.
    Tensor mm_a = Tensor::randn({512, 512}, rng);
    Tensor mm_b = Tensor::randn({512, 512}, rng);
    Tensor conv_in = Tensor::randn({1, 16, 96, 96}, rng);
    Tensor conv_w = Tensor::randn({32, 16, 3, 3}, rng);
    Tensor sum_in = Tensor::randn({1 << 23}, rng);
    vsa::Codebook book(512, 8192, rng);
    Tensor query = vsa::randomHypervector(8192, rng);
    Tensor cc_a = vsa::randomHypervector(4096, rng);
    Tensor cc_b = vsa::randomHypervector(4096, rng);

    std::vector<Kernel> kernels = {
        {"matmul_512", [&] { return tensor::sumAll(matmul(mm_a, mm_b)); }},
        {"conv2d_16x96", [&] {
             return tensor::sumAll(
                 conv2d(conv_in, conv_w, Tensor(), 1, 1));
         }},
        {"sum_8M", [&] { return tensor::sumAll(sum_in); }},
        {"codebook_cleanup",
         [&] {
             auto r = book.cleanup(query);
             return static_cast<double>(r.index) + r.similarity;
         }},
        {"circular_conv_4k", [&] {
             return tensor::sumAll(vsa::circularConvolve(cc_a, cc_b));
         }},
    };

    const std::vector<int> widths = {1, 2, 4, 8};

    // Profiler attribution is not what we measure here; keep it out of
    // the timings.
    core::globalProfiler().setEnabled(false);

    util::Table table({"kernel", "t1", "t2", "t4", "t8", "speedup@4",
                       "match"});
    std::ostringstream json;
    json << "{\"bench\":\"scaling_threads\",\"hw_threads\":"
         << util::ThreadPool::defaultThreads() << ",\"kernels\":[";

    bool all_match = true;
    for (size_t k = 0; k < kernels.size(); k++) {
        const Kernel &kernel = kernels[k];
        std::vector<double> seconds;
        double base_checksum = 0.0;
        bool match = true;
        for (int width : widths) {
            util::ThreadPool::setGlobalThreads(width);
            double checksum = 0.0;
            seconds.push_back(timeKernel(kernel, &checksum));
            if (width == 1) {
                base_checksum = checksum;
            } else {
                double denom = std::max(1.0, std::abs(base_checksum));
                if (std::abs(checksum - base_checksum) / denom >
                    1e-5) {
                    match = false;
                }
            }
        }
        all_match = all_match && match;

        double speedup4 = seconds[2] > 0.0 ? seconds[0] / seconds[2]
                                           : 0.0;
        table.addRow({kernel.name, util::humanSeconds(seconds[0]),
                      util::humanSeconds(seconds[1]),
                      util::humanSeconds(seconds[2]),
                      util::humanSeconds(seconds[3]),
                      util::fixedStr(speedup4, 2) + "x",
                      match ? "yes" : "NO"});

        json << (k ? "," : "") << "{\"name\":\"" << kernel.name
             << "\",\"seconds\":[";
        for (size_t i = 0; i < seconds.size(); i++)
            json << (i ? "," : "") << seconds[i];
        json << "],\"threads\":[1,2,4,8],\"speedup_at_4\":" << speedup4
             << ",\"match\":" << (match ? "true" : "false") << "}";
    }
    json << "]}";
    util::ThreadPool::setGlobalThreads(0); // Back to the default width.
    core::globalProfiler().setEnabled(true);

    table.print(std::cout);
    std::cout << "\nSpeedups depend on the host: on a single-core "
                 "container every width collapses to ~1x; on >= 4 "
                 "hardware threads matmul_512 should reach >= 2.5x "
                 "at width 4.\n"
              << (all_match ? ""
                            : "WARNING: parallel/serial mismatch "
                              "detected!\n")
              << "\nBENCH_JSON " << json.str() << "\n";
    bench::writeBenchJson(argc, argv, json.str());
    return all_match ? 0 : 1;
}
