/**
 * @file
 * Recommendation 3: quantization of the memory-dominating codebooks.
 *
 * Compares FP32 and INT8 codebook cleanup for memory footprint,
 * lookup time and noise robustness, over both random bipolar atoms
 * and NVSA-style fractional-power atoms.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "core/profiler.hh"
#include "tensor/tensor.hh"
#include "util/format.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "util/timer.hh"
#include "vsa/codebook.hh"
#include "vsa/ops.hh"
#include "vsa/quantized.hh"

namespace
{

using namespace nsbench;
using tensor::Tensor;

void
BM_CleanupFp32(benchmark::State &state)
{
    core::globalProfiler().setEnabled(false);
    util::Rng rng(1);
    vsa::Codebook book(state.range(0), 2048, rng);
    Tensor query = book.atom(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(book.cleanup(query).index);
    core::globalProfiler().setEnabled(true);
}

void
BM_CleanupInt8(benchmark::State &state)
{
    core::globalProfiler().setEnabled(false);
    util::Rng rng(1);
    vsa::Codebook fp32(state.range(0), 2048, rng);
    vsa::QuantizedCodebook book(fp32);
    Tensor query = fp32.atom(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(book.cleanup(query).index);
    core::globalProfiler().setEnabled(true);
}

BENCHMARK(BM_CleanupFp32)->Arg(256)->Arg(1024);
BENCHMARK(BM_CleanupInt8)->Arg(256)->Arg(1024);

} // namespace

int
main(int argc, char **argv)
{
    std::cout << "\n=== Codebook quantization (Recommendation 3) "
                 "===\n\n";

    util::Rng rng(11);
    util::Table table(
        {"codebook", "precision", "bytes", "noise", "accuracy"});

    auto sweep = [&](const std::string &label, vsa::Codebook &fp32) {
        vsa::QuantizedCodebook int8(fp32);
        for (double flip : {0.2, 0.35}) {
            int fp32_ok = 0, int8_ok = 0;
            const int trials = 50;
            for (int t = 0; t < trials; t++) {
                auto idx = rng.uniformInt(0, fp32.entries() - 1);
                Tensor noisy = fp32.atom(idx);
                auto data = noisy.data();
                for (float &v : data) {
                    if (rng.bernoulli(flip))
                        v = -v;
                }
                if (fp32.cleanup(noisy).index == idx)
                    fp32_ok++;
                if (int8.cleanup(noisy).index == idx)
                    int8_ok++;
            }
            table.addRow({label, "fp32",
                          util::humanBytes(fp32.bytes()),
                          util::percentStr(flip, 0),
                          util::percentStr(
                              static_cast<double>(fp32_ok) / trials,
                              0)});
            table.addRow({label, "int8",
                          util::humanBytes(int8.bytes()),
                          util::percentStr(flip, 0),
                          util::percentStr(
                              static_cast<double>(int8_ok) / trials,
                              0)});
        }
    };

    vsa::Codebook bipolar(256, 2048, rng);
    sweep("bipolar-256x2048", bipolar);

    Tensor base = vsa::unitaryVector(2048, rng);
    Tensor atoms({10, 2048});
    for (int v = 0; v < 10; v++) {
        Tensor atom = vsa::convPower(base, v + 1);
        for (int64_t i = 0; i < 2048; i++)
            atoms(v, i) = atom(i);
    }
    vsa::Codebook fractional(std::move(atoms));
    sweep("fractional-10x2048", fractional);

    table.print(std::cout);
    std::cout << "\nINT8 cuts the codebook footprint ~4x with no "
                 "measurable accuracy loss — quantization directly "
                 "attacks the memory-bound symbolic phase "
                 "(Takeaway 4 + Recommendation 3).\n\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
