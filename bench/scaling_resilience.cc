/**
 * @file
 * Throughput/latency cost of the serving resilience layer under
 * injected faults.
 *
 * Serves LNN at the serve preset under saturating closed-loop load
 * and sweeps the worker run()-fault rate across {0%, 1%, 10%} with a
 * deterministic failpoint schedule (serve.worker.run, fixed seed).
 * Each operating point reports sustained throughput, p50/p99 latency
 * tails, faults absorbed and retries issued.
 *
 * The mechanism under test is bounded retry-with-backoff: with
 * maxRetries=8, eight consecutive faulted attempts at a 10% fault
 * rate is a 1e-8 event, so the resilience layer must convert every
 * injected fault into a completion. The acceptance gate requires, at
 * every faulted operating point, zero terminal failures and zero
 * expiries (100% success) while faults actually fired — plus a sane
 * fault-free baseline.
 *
 * Not a paper figure: this tracks the reproduction's own serving
 * runtime (Sec. V deployment recommendations), extended with the
 * fault model of the chaos tier.
 */

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common.hh"
#include "serve/loadgen.hh"
#include "serve/presets.hh"
#include "serve/server.hh"
#include "util/failpoint.hh"
#include "util/format.hh"
#include "util/table.hh"
#include "workloads/register.hh"

namespace
{

using namespace nsbench;

/** One measured operating point of the fault-rate sweep. */
struct Point
{
    double faultRate = 0.0;
    double throughput = 0.0;
    double p50Ms = 0.0;
    double p99Ms = 0.0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t expired = 0;
    uint64_t faults = 0;
    uint64_t retries = 0;
    double successRate = 0.0;
};

Point
measure(double fault_rate)
{
    // The schedule is a pure function of this spec: the same fault
    // rate measures the same fault sequence on every run.
    if (fault_rate > 0.0) {
        std::ostringstream spec;
        spec << "serve.worker.run=" << fault_rate << "@1234";
        std::string error =
            util::failpoints::configure(spec.str());
        if (!error.empty()) {
            std::cerr << "failpoint spec: " << error << "\n";
            std::exit(1);
        }
    } else {
        util::failpoints::reset();
    }

    serve::ServerOptions server_options;
    server_options.workloads = {"LNN"};
    server_options.workers = 2;
    server_options.maxBatch = 8;
    server_options.maxWaitUs = 2000;
    server_options.maxRetries = 8;
    server_options.retryBackoffUs = 100;
    server_options.factory = serve::serveFactory;

    serve::LoadgenOptions load_options;
    load_options.openLoop = false;
    load_options.clients = 16;
    load_options.durationSeconds = 1.2;
    load_options.seedUniverse = 16;
    load_options.zipfExponent = 1.1;

    serve::Server server(std::move(server_options));
    serve::LoadgenReport report =
        serve::runLoadgen(server, load_options);
    serve::WorkloadMetrics metrics =
        server.metrics().workload("LNN");
    server.shutdown();
    util::failpoints::reset();

    Point point;
    point.faultRate = fault_rate;
    point.throughput = report.throughput();
    point.p50Ms = metrics.latency.p50() * 1e3;
    point.p99Ms = metrics.latency.p99() * 1e3;
    point.completed = metrics.completed;
    point.failed = metrics.failed;
    point.expired = metrics.expired;
    point.faults = metrics.workerFaults;
    point.retries = metrics.retries;
    point.successRate = metrics.successRate();
    return point;
}

} // namespace

int
main(int argc, char **argv)
{
    workloads::registerAllWorkloads();
    bench::printHeader(
        "Serving resilience under injected worker faults",
        "runtime extra (chaos tier; Sec. V deployment)");

    const std::vector<double> rates = {0.0, 0.01, 0.10};
    util::Table table({"fault%", "req/s", "p50 ms", "p99 ms", "done",
                       "faults", "retries", "failed", "expired",
                       "success%"});
    std::ostringstream json;
    json << "{\"bench\":\"scaling_resilience\",\"points\":[";

    bool pass = true;
    for (size_t r = 0; r < rates.size(); r++) {
        Point point = measure(rates[r]);
        table.addRow({util::fixedStr(point.faultRate * 100.0, 0),
                      util::fixedStr(point.throughput, 1),
                      util::fixedStr(point.p50Ms, 2),
                      util::fixedStr(point.p99Ms, 2),
                      std::to_string(point.completed),
                      std::to_string(point.faults),
                      std::to_string(point.retries),
                      std::to_string(point.failed),
                      std::to_string(point.expired),
                      util::fixedStr(point.successRate * 100.0, 1)});
        json << (r ? "," : "") << "{\"fault_rate\":"
             << point.faultRate << ",\"throughput\":"
             << point.throughput << ",\"p99_ms\":" << point.p99Ms
             << ",\"faults\":" << point.faults << ",\"retries\":"
             << point.retries << ",\"failed\":" << point.failed
             << "}";

        // Gate: every operating point completes everything it
        // admitted; the faulted points must additionally have seen
        // real injected faults (otherwise the sweep measured
        // nothing).
        if (point.failed != 0 || point.expired != 0)
            pass = false;
        if (point.faultRate > 0.0 && point.faults == 0)
            pass = false;
        if (point.faultRate == 0.0 &&
            (point.faults != 0 || point.retries != 0))
            pass = false;
        if (point.completed == 0)
            pass = false;
    }
    json << "],\"pass\":" << (pass ? "true" : "false") << "}";

    table.print(std::cout);
    std::cout << "\nGate: zero terminal failures and zero expiries "
                 "at every fault rate (retries absorb 100% of "
                 "injected faults), nonzero faults at the faulted "
                 "points, a clean fault-free baseline: "
              << (pass ? "PASS" : "FAIL") << ".\n"
              << "\nBENCH_JSON " << json.str() << "\n";
    bench::writeBenchJson(argc, argv, json.str());
    return pass ? 0 : 1;
}
