/**
 * @file
 * Extra (beyond the paper's tables): characterization of a *training*
 * step.
 *
 * The paper profiles inference; its Tab. III nonetheless lists the
 * training approaches of every workload, and the outlook asks for
 * differentiable-logic frameworks. This bench profiles one LTN
 * training epoch — forward grounding (neural), fuzzy axiom evaluation
 * (symbolic) and the reverse-mode gradient sweep — through the same
 * instrumented kernels, showing that the symbolic share of
 * neuro-symbolic *training* behaves like the inference splits of
 * Fig. 2a.
 */

#include <iostream>

#include "common.hh"
#include "core/profiler.hh"
#include "core/report.hh"
#include "data/tabular.hh"
#include "nn/autograd.hh"
#include "sim/device.hh"
#include "sim/projection.hh"
#include "tensor/ops.hh"
#include "util/format.hh"
#include "util/rng.hh"

namespace
{

using namespace nsbench;
using nn::Variable;
using tensor::Tensor;

Variable
forAll(const Variable &truths, float p = 2.0f)
{
    Variable complement = subV(
        Variable(Tensor::ones(truths.value().shape())), truths);
    return subV(Variable(Tensor::ones({1})),
                powV(meanAllV(powV(complement, p)), 1.0f / p));
}

} // namespace

int
main()
{
    bench::printHeader(
        "LTN training-step characterization (extra)",
        "Tab. III training approaches / outlook on differentiable "
        "frameworks");

    util::Rng rng(99);
    auto data = data::makeRelationalDataset(120, 16, 8, rng);

    const int64_t hidden = 32;
    Variable w1(Tensor::randn({hidden, data.featureDim}, rng, 0.0f,
                              0.4f),
                true);
    Variable b1(Tensor::zeros({hidden}), true);
    Variable w2(Tensor::randn({1, hidden}, rng, 0.0f, 0.4f), true);
    Variable b2(Tensor::zeros({1}), true);
    nn::SgdOptimizer opt(0.3f);
    for (Variable *p : {&w1, &b1, &w2, &b2})
        opt.addParameter(*p);

    auto &prof = core::globalProfiler();
    prof.reset();

    double sat_first = 0.0, sat_last = 0.0;
    const int epochs = 20;
    for (int epoch = 0; epoch < epochs; epoch++) {
        Variable smokes, loss;
        {
            core::PhaseScope neural(core::Phase::Neural,
                                    "ltn_train/grounding");
            Variable h = tanhV(
                linearV(Variable(data.features.clone()), w1, b1));
            smokes = sigmoidV(linearV(h, w2, b2));
        }
        {
            core::PhaseScope symbolic(core::Phase::Symbolic,
                                      "ltn_train/axioms");
            // forall x: Smokes(x) -> (cluster-mean features > 0),
            // grounded as agreement with the latent trait labels for
            // a supervised satisfaction signal.
            Tensor truth({data.people, 1});
            for (int i = 0; i < data.people; i++) {
                truth(i, 0) =
                    data.smokes[static_cast<size_t>(i)] ? 1.0f : 0.0f;
            }
            Variable t(truth);
            Variable ones(Tensor::ones(truth.shape()));
            Variable agreement =
                addV(mulV(smokes, t),
                     mulV(subV(ones, smokes), subV(ones, t)));
            Variable sat = forAll(agreement);
            loss = subV(Variable(Tensor::ones({1})), sat);
            if (epoch == 0)
                sat_first = sat.value().flat(0);
            sat_last = sat.value().flat(0);
        }
        {
            // The gradient sweep re-runs the same instrumented tensor
            // kernels; attribute it as the training backend.
            core::PhaseScope neural(core::Phase::Neural,
                                    "ltn_train/backward");
            loss.backward();
            opt.step();
        }
    }

    std::cout << "satisfaction: " << util::fixedStr(sat_first, 3)
              << " -> " << util::fixedStr(sat_last, 3) << " over "
              << epochs << " epochs\n\n";

    core::phaseBreakdownTable(prof).print(std::cout);
    std::cout << "\n";
    core::regionTable(prof).print(std::cout);

    auto proj = sim::projectProfile(sim::rtx2080ti(), prof);
    std::cout << "\nRTX 2080 Ti projection of the training stream: "
              << util::humanSeconds(proj.totalSeconds) << " (neural "
              << util::percentStr(proj.neuralFraction())
              << ", symbolic "
              << util::percentStr(proj.symbolicFraction())
              << ") — the fuzzy-logic axiom machinery keeps a "
                 "substantial symbolic share even inside the "
                 "training loop.\n";
    prof.reset();
    return 0;
}
