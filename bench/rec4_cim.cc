/**
 * @file
 * Recommendation 4: compute-in-memory for the memory-bound symbolic
 * phase.
 *
 * The paper recommends emerging-memory / compute-in-memory (CIM)
 * techniques for the vector-symbolic operations that Fig. 3c shows
 * to be bandwidth-bound. This bench re-projects NVSA's measured op
 * stream onto an RTX-class device augmented with a CIM array that
 * executes the codebook-resident operators (PMF<->VSA transforms,
 * cleanup scans, bindings) in place: their DRAM streaming term
 * disappears and only the result writeback moves. The per-op
 * analytical model mirrors associative-memory CIM proposals
 * (VSA similarity search inside the array).
 */

#include <algorithm>
#include <iostream>
#include <set>
#include <string>

#include "common.hh"
#include "sim/device.hh"
#include "sim/projection.hh"
#include "util/format.hh"
#include "util/table.hh"
#include "workloads/nvsa.hh"

namespace
{

using namespace nsbench;

/** Operators a VSA-CIM array absorbs (codebook/vector resident). */
const std::set<std::string> cimOps = {
    "pmf_to_vsa",   "vsa_to_pmf",      "codebook_cleanup",
    "vsa_bind",     "vsa_unbind",      "vsa_bundle",
    "vsa_majority", "circular_conv",   "circular_corr",
    "vsa_cosine",   "resonator_project", "resonator_recombine",
};

/**
 * Projects one profiled run with and without the CIM array.
 * CIM-eligible symbolic ops lose their bandwidth term (operands stay
 * in the array) and run at a modest in-array compute efficiency.
 */
std::pair<double, double>
projectWithCim(const core::Profiler &prof, const sim::DeviceSpec &dev)
{
    double baseline = 0.0;
    double with_cim = 0.0;
    for (const auto &op : prof.opsByTime()) {
        double normal = sim::projectOp(dev, op.category, op.stats);
        baseline += normal;
        bool eligible = op.phase == core::Phase::Symbolic &&
                        cimOps.count(op.name) > 0;
        if (!eligible) {
            with_cim += normal;
            continue;
        }
        // In-array execution: compute at a fixed 20% array
        // efficiency of device peak, result writeback only, and a
        // tenth of the dispatch overhead (commands, not kernels).
        double compute_s =
            op.stats.flops / (dev.peakGflops * 1e9 * 0.20);
        double writeback_s =
            op.stats.bytesWritten / (dev.memBandwidthGBs * 1e9);
        double overhead_s =
            static_cast<double>(op.stats.invocations) *
            dev.launchOverheadUs * 1e-7;
        with_cim +=
            std::max(compute_s, writeback_s) + overhead_s;
    }
    return {baseline, with_cim};
}

} // namespace

int
main()
{
    bench::printHeader(
        "Compute-in-memory projection for VSA symbolic operators",
        "Recommendation 4 / Takeaway 4");

    util::Table table({"workload", "device", "baseline", "with-CIM",
                       "speedup"});
    for (const char *name : {"NVSA", "VSAIT"}) {
        auto run = bench::profileWorkload(name);
        for (const auto *dev :
             {&sim::rtx2080ti(), &sim::jetsonTx2()}) {
            auto [base, cim] = projectWithCim(run.profile, *dev);
            table.addRow({name, dev->name,
                          util::humanSeconds(base),
                          util::humanSeconds(cim),
                          util::fixedStr(base / cim, 2) + "x"});
        }
    }
    table.print(std::cout);

    std::cout
        << "\nAbsorbing the codebook-resident operators into a CIM "
           "array removes the DRAM streaming that bounds the "
           "symbolic phase (Fig. 3c), which is exactly where the "
           "paper's Recommendation 4 points. The residual time is "
           "the neural phase plus the non-CIM symbolic control "
           "flow.\n";
    return 0;
}
