/**
 * @file
 * Ablation: NVSA's algebraic abduction vs PrAE's exhaustive
 * abduction on the same task family.
 *
 * The paper's central workload contrast: NVSA substitutes the
 * exhaustive probability computation with vector-space algebra.
 * This bench runs both backends at matched task sizes and reports
 * accuracy, wall time and symbolic-phase composition.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "common.hh"
#include "core/report.hh"
#include "util/format.hh"
#include "util/table.hh"
#include "workloads/nvsa.hh"
#include "workloads/prae.hh"

namespace
{

using namespace nsbench;

void
BM_NvsaEpisode(benchmark::State &state)
{
    workloads::NvsaConfig config;
    config.grid = static_cast<int>(state.range(0));
    config.hvDim = 1024;
    config.episodes = 1;
    workloads::NvsaWorkload w(config);
    w.setUp(7);
    core::globalProfiler().setEnabled(false);
    for (auto _ : state)
        benchmark::DoNotOptimize(w.run());
    core::globalProfiler().setEnabled(true);
}

void
BM_PraeEpisode(benchmark::State &state)
{
    workloads::PraeConfig config;
    config.grid = static_cast<int>(state.range(0));
    config.episodes = 1;
    workloads::PraeWorkload w(config);
    w.setUp(7);
    core::globalProfiler().setEnabled(false);
    for (auto _ : state)
        benchmark::DoNotOptimize(w.run());
    core::globalProfiler().setEnabled(true);
}

BENCHMARK(BM_NvsaEpisode)->Arg(1)->Arg(2)->Arg(3)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_PraeEpisode)->Arg(1)->Arg(2)->Arg(3)->Unit(
    benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    std::cout << "\n=== Ablation: algebraic (NVSA) vs exhaustive "
                 "(PrAE) abduction ===\n\n";

    util::Table table({"backend", "grid", "accuracy", "wall",
                       "symbolic%", "symbolic-flops"});
    for (int grid : {2, 3}) {
        {
            workloads::NvsaConfig config;
            config.grid = grid;
            config.hvDim = 1024;
            config.episodes = 4;
            workloads::NvsaWorkload w(config);
            auto run = bench::profileWorkload(w, 5);
            auto split = core::phaseSplit(run.profile);
            table.addRow(
                {"NVSA (algebraic)", std::to_string(grid),
                 util::fixedStr(run.score, 2),
                 util::humanSeconds(run.wallSeconds),
                 util::fixedStr(100 * split.symbolicFraction(), 1),
                 util::humanCount(
                     run.profile.phaseTotals(core::Phase::Symbolic)
                         .flops,
                     "FLOP")});
        }
        {
            workloads::PraeConfig config;
            config.grid = grid;
            config.episodes = 4;
            workloads::PraeWorkload w(config);
            auto run = bench::profileWorkload(w, 5);
            auto split = core::phaseSplit(run.profile);
            table.addRow(
                {"PrAE (exhaustive)", std::to_string(grid),
                 util::fixedStr(run.score, 2),
                 util::humanSeconds(run.wallSeconds),
                 util::fixedStr(100 * split.symbolicFraction(), 1),
                 util::humanCount(
                     run.profile.phaseTotals(core::Phase::Symbolic)
                         .flops,
                     "FLOP")});
        }
    }
    table.print(std::cout);
    std::cout << "\nBoth backends solve the task; they trade "
                 "high-dimensional streaming algebra (NVSA) against "
                 "rule-enumeration probability sums (PrAE) — the "
                 "pair of symbolic cost models the paper contrasts.\n\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
