/**
 * @file
 * Ablation: naive O(d^2) vs FFT O(d log d) circular convolution.
 *
 * NVSA's rule algebra leans on circular-convolution binding, which
 * the paper identifies as a memory-streaming bottleneck
 * (Recommendation 2/4). This bench quantifies the algorithmic
 * headroom a dedicated implementation has.
 */

#include <benchmark/benchmark.h>

#include "core/profiler.hh"
#include "tensor/tensor.hh"
#include "util/rng.hh"
#include "vsa/ops.hh"

namespace
{

using namespace nsbench;

void
BM_NaiveCircularConv(benchmark::State &state)
{
    core::globalProfiler().setEnabled(false);
    util::Rng rng(1);
    auto dim = static_cast<int64_t>(state.range(0));
    auto a = vsa::randomHypervector(dim, rng);
    auto b = vsa::randomHypervector(dim, rng);
    for (auto _ : state) {
        auto c = vsa::circularConvolve(a, b);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetComplexityN(dim);
    core::globalProfiler().setEnabled(true);
}

void
BM_FftCircularConv(benchmark::State &state)
{
    core::globalProfiler().setEnabled(false);
    util::Rng rng(1);
    auto dim = static_cast<int64_t>(state.range(0));
    auto a = vsa::randomHypervector(dim, rng);
    auto b = vsa::randomHypervector(dim, rng);
    for (auto _ : state) {
        auto c = vsa::fftCircularConvolve(a, b);
        benchmark::DoNotOptimize(c.data().data());
    }
    state.SetComplexityN(dim);
    core::globalProfiler().setEnabled(true);
}

void
BM_HadamardBind(benchmark::State &state)
{
    core::globalProfiler().setEnabled(false);
    util::Rng rng(1);
    auto dim = static_cast<int64_t>(state.range(0));
    auto a = vsa::randomHypervector(dim, rng);
    auto b = vsa::randomHypervector(dim, rng);
    for (auto _ : state) {
        auto c = vsa::bind(a, b);
        benchmark::DoNotOptimize(c.data().data());
    }
    core::globalProfiler().setEnabled(true);
}

BENCHMARK(BM_NaiveCircularConv)
    ->RangeMultiplier(2)
    ->Range(256, 4096)
    ->Complexity();
BENCHMARK(BM_FftCircularConv)
    ->RangeMultiplier(2)
    ->Range(256, 4096)
    ->Complexity();
BENCHMARK(BM_HadamardBind)->RangeMultiplier(2)->Range(256, 4096);

} // namespace

BENCHMARK_MAIN();
