/**
 * @file
 * Ablation: codebook size vs cleanup robustness, and the payoff of
 * sparsity-aware PMF encoding (Recommendation 7).
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "core/profiler.hh"
#include "tensor/tensor.hh"
#include "util/format.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "vsa/binary.hh"
#include "vsa/codebook.hh"

namespace
{

using namespace nsbench;

/** Fraction of noisy atoms cleanup still recovers. */
double
cleanupAccuracy(int64_t entries, int64_t dim, double flip_prob,
                int trials)
{
    util::Rng rng(entries * 7919 + dim);
    vsa::Codebook book(entries, dim, rng);
    int correct = 0;
    for (int t = 0; t < trials; t++) {
        auto idx = rng.uniformInt(0, entries - 1);
        auto noisy = book.atom(idx);
        auto data = noisy.data();
        for (float &v : data) {
            if (rng.bernoulli(flip_prob))
                v = -v;
        }
        if (book.cleanup(noisy).index == idx)
            correct++;
    }
    return static_cast<double>(correct) / trials;
}

void
BM_BinaryCleanupLookup(benchmark::State &state)
{
    core::globalProfiler().setEnabled(false);
    util::Rng rng(3);
    vsa::BinaryCodebook book(state.range(0), 1024, rng);
    auto query = book.atom(0);
    for (auto _ : state) {
        auto res = book.cleanup(query);
        benchmark::DoNotOptimize(res.index);
    }
    core::globalProfiler().setEnabled(true);
}

void
BM_CleanupLookup(benchmark::State &state)
{
    core::globalProfiler().setEnabled(false);
    util::Rng rng(3);
    vsa::Codebook book(state.range(0), 1024, rng);
    auto query = book.atom(0);
    for (auto _ : state) {
        auto res = book.cleanup(query);
        benchmark::DoNotOptimize(res.index);
    }
    core::globalProfiler().setEnabled(true);
}

void
BM_EncodePmf(benchmark::State &state)
{
    core::globalProfiler().setEnabled(false);
    util::Rng rng(5);
    int64_t entries = 512;
    vsa::Codebook book(entries, 1024, rng);
    // A peaked (sparse) PMF: 4 active entries.
    tensor::Tensor pmf({entries});
    pmf(3) = 0.9f;
    pmf(17) = 0.05f;
    pmf(101) = 0.03f;
    pmf(499) = 0.02f;
    // range(0) selects dense (threshold 0 touches every atom) vs
    // sparsity-aware (threshold skips the zeros).
    float threshold = state.range(0) ? 1e-3f : -1.0f;
    for (auto _ : state) {
        auto hv = book.encodePmf(pmf, {}, threshold);
        benchmark::DoNotOptimize(hv.data().data());
    }
    core::globalProfiler().setEnabled(true);
}

BENCHMARK(BM_CleanupLookup)->RangeMultiplier(4)->Range(64, 4096);
BENCHMARK(BM_BinaryCleanupLookup)->RangeMultiplier(4)->Range(64, 4096);
BENCHMARK(BM_EncodePmf)->Arg(0)->Arg(1);

} // namespace

int
main(int argc, char **argv)
{
    std::cout << "\n=== Ablation: codebook capacity vs cleanup "
                 "robustness ===\n\n";
    util::Table table({"entries", "dim", "noise", "accuracy"});
    for (int64_t dim : {256, 1024}) {
        for (int64_t entries : {64, 512}) {
            for (double flip : {0.2, 0.35}) {
                table.addRow({std::to_string(entries),
                              std::to_string(dim),
                              util::percentStr(flip, 0),
                              util::percentStr(
                                  cleanupAccuracy(entries, dim, flip,
                                                  60),
                                  1)});
            }
        }
    }
    table.print(std::cout);
    std::cout << "\nHigher dimension buys robustness at a linear "
                 "memory cost; this is the codebook-size/quasi-"
                 "orthogonality trade-off behind NVSA's large "
                 "footprint (Takeaway 4).\n\n";

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
