/**
 * @file
 * Allocation-churn comparison of the heap and arena tensor allocators.
 *
 * Runs every paper workload twice per allocator mode — a warm-up run
 * that (in arena mode) fills the size-classed free lists, then a
 * measured steady-state run — and reports wall time, allocation
 * counts, fresh (heap-hitting) allocations, bytes recycled, and the
 * peak live footprint. The final BENCH_JSON line is machine-readable
 * so the allocator's perf trajectory can be tracked run over run.
 *
 * Acceptance floors: the arena must cut steady-state fresh allocations
 * by >= 10x on NVSA and LNN, scores must be bit-identical across
 * modes, and the Fig. 3b peak-live figure must not change at all (peak
 * tracks logical live bytes, never arena capacity).
 *
 * Not a paper figure: this tracks the reproduction's own runtime,
 * motivated by the data-movement/memory-bottleneck observations of
 * Sec. IV.
 */

#include <algorithm>
#include <iostream>
#include <sstream>
#include <string>

#include "common.hh"
#include "core/profiler.hh"
#include "core/workload.hh"
#include "tensor/alloc.hh"
#include "util/arena.hh"
#include "util/format.hh"
#include "util/table.hh"
#include "util/timer.hh"
#include "workloads/register.hh"

namespace
{

using namespace nsbench;

struct ModeResult
{
    double seconds = 0.0;
    double score = 0.0;
    uint64_t peak = 0;
    core::MemChurn churn;
};

ModeResult
measure(const std::string &name, tensor::AllocatorKind kind)
{
    tensor::setAllocator(kind);
    util::Arena &arena = util::Arena::global();
    arena.trim();
    arena.resetStats();

    auto workload = core::WorkloadRegistry::global().create(name);
    workload->setUp(42);
    auto &prof = core::globalProfiler();

    // Warm-up run: in arena mode this populates the free lists so the
    // measured run below sees steady-state recycling.
    prof.reset();
    (void)workload->run();

    prof.reset();
    util::WallTimer timer;
    ModeResult r;
    r.score = workload->run();
    r.seconds = timer.elapsed();
    r.peak = prof.peakBytes();
    r.churn = prof.memChurn();
    prof.reset();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    workloads::registerAllWorkloads();
    bench::printHeader("Tensor allocator scaling",
                       "runtime extra (Sec. IV data movement)");

    util::Table table({"workload", "allocator", "wall", "allocs",
                       "fresh", "recycled-bytes", "peak-live",
                       "fresh-reduction"});
    std::ostringstream json;
    json << "{\"bench\":\"scaling_memory\",\"workloads\":[";

    bool ok = true;
    size_t idx = 0;
    for (const auto &name : bench::paperOrder()) {
        ModeResult heap =
            measure(name, tensor::AllocatorKind::Heap);
        ModeResult arena =
            measure(name, tensor::AllocatorKind::Arena);

        // Steady-state fresh-allocation reduction: every heap-mode
        // alloc is fresh; in arena mode only free-list misses are.
        double reduction =
            static_cast<double>(heap.churn.freshAllocs()) /
            static_cast<double>(
                std::max<uint64_t>(1, arena.churn.freshAllocs()));

        bool peak_match = heap.peak == arena.peak;
        bool score_match = heap.score == arena.score;
        if (!peak_match || !score_match)
            ok = false;
        if ((name == "NVSA" || name == "LNN") && reduction < 10.0)
            ok = false;

        table.addRow({name, "heap", util::humanSeconds(heap.seconds),
                      std::to_string(heap.churn.allocs),
                      std::to_string(heap.churn.freshAllocs()),
                      util::humanBytes(heap.churn.recycledBytes),
                      util::humanBytes(heap.peak), ""});
        table.addRow(
            {name, "arena", util::humanSeconds(arena.seconds),
             std::to_string(arena.churn.allocs),
             std::to_string(arena.churn.freshAllocs()),
             util::humanBytes(arena.churn.recycledBytes),
             util::humanBytes(arena.peak),
             util::fixedStr(reduction, 1) + "x" +
                 (peak_match ? "" : " PEAK-MISMATCH") +
                 (score_match ? "" : " SCORE-MISMATCH")});

        json << (idx++ ? "," : "") << "{\"name\":\"" << name
             << "\",\"heap_seconds\":" << heap.seconds
             << ",\"arena_seconds\":" << arena.seconds
             << ",\"heap_allocs\":" << heap.churn.allocs
             << ",\"arena_fresh_allocs\":"
             << arena.churn.freshAllocs()
             << ",\"arena_recycled_bytes\":"
             << arena.churn.recycledBytes
             << ",\"fresh_reduction\":" << reduction
             << ",\"peak_match\":" << (peak_match ? "true" : "false")
             << ",\"score_match\":" << (score_match ? "true" : "false")
             << "}";
    }
    json << "]}";

    tensor::resetAllocator();
    util::Arena::global().trim();

    table.print(std::cout);
    std::cout << "\nFloors: >= 10x steady-state fresh-alloc reduction "
                 "on NVSA and LNN; peak-live and scores identical "
                 "across allocators for every workload.\n"
              << (ok ? "" : "WARNING: allocator floor violated!\n")
              << "\nBENCH_JSON " << json.str() << "\n";
    bench::writeBenchJson(argc, argv, json.str());
    return ok ? 0 : 1;
}
