/**
 * @file
 * Throughput/latency scaling of the batched serving runtime.
 *
 * For a CPU-bound, seed-sensitive workload (NVSA at the serve preset,
 * driven with a Zipf-skewed seed universe) and two seed-insensitive
 * ones (LNN, NLM), sweeps the batcher's max_batch across {1, 4, 8}
 * under saturating closed-loop load and reports sustained throughput
 * with the p50/p95/p99 latency tails at every operating point.
 *
 * The gain mechanism under test is coalescing: requests for the same
 * (model, seed) are interchangeable by the determinism contract, so a
 * batch runs each distinct seed once and fans the score out.
 * max_batch=1 disables sharing entirely; the acceptance bar is that
 * max_batch >= 4 sustains >= 1.5x the batch-1 throughput on at least
 * two workloads.
 *
 * Not a paper figure: this tracks the reproduction's own serving
 * runtime, motivated by the deployment recommendations of Sec. V.
 */

#include <algorithm>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common.hh"
#include "serve/loadgen.hh"
#include "serve/presets.hh"
#include "serve/server.hh"
#include "util/format.hh"
#include "util/table.hh"
#include "workloads/register.hh"

namespace
{

using namespace nsbench;

/** One workload under test and how to drive it. */
struct Subject
{
    std::string name;
    double durationSeconds;
    uint64_t seedUniverse; ///< 0 -> unique seeds (no coalescing).
    double zipfExponent;
};

/** One measured operating point. */
struct Point
{
    int maxBatch = 0;
    double throughput = 0.0;
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;
    double share = 0.0;
    double occupancy = 0.0;
    uint64_t completed = 0;
    uint64_t rejected = 0;
};

Point
measure(const Subject &subject, int max_batch)
{
    serve::ServerOptions server_options;
    server_options.workloads = {subject.name};
    server_options.workers = 2;
    server_options.maxBatch = max_batch;
    server_options.maxWaitUs = 2000;
    server_options.factory = serve::serveFactory;

    serve::LoadgenOptions load_options;
    load_options.openLoop = false;
    load_options.clients = 16;
    load_options.durationSeconds = subject.durationSeconds;
    load_options.seedUniverse = subject.seedUniverse;
    load_options.zipfExponent = subject.zipfExponent;

    serve::Server server(std::move(server_options));
    serve::LoadgenReport report =
        serve::runLoadgen(server, load_options);
    serve::WorkloadMetrics metrics =
        server.metrics().workload(subject.name);
    server.shutdown();

    Point point;
    point.maxBatch = max_batch;
    point.throughput = report.throughput();
    point.p50Ms = metrics.latency.p50() * 1e3;
    point.p95Ms = metrics.latency.p95() * 1e3;
    point.p99Ms = metrics.latency.p99() * 1e3;
    point.share = metrics.shareFactor();
    point.occupancy = metrics.batchOccupancy.mean();
    point.completed = metrics.completed;
    point.rejected = report.rejected;
    return point;
}

} // namespace

int
main(int argc, char **argv)
{
    workloads::registerAllWorkloads();
    bench::printHeader("Batched serving throughput/latency scaling",
                       "runtime extra (Sec. V deployment)");

    // NVSA is seed-sensitive: coalescing only merges requests that
    // ask for the same episode seed, so it is driven with a small
    // Zipf-skewed seed universe (popular puzzles repeat). LNN and
    // NLM declare seedSensitive() == false and coalesce wholesale.
    const std::vector<Subject> subjects = {
        {"NVSA", 2.5, 4, 1.3},
        {"LNN", 1.2, 16, 1.1},
        {"NLM", 1.2, 16, 1.1},
    };
    const std::vector<int> batches = {1, 4, 8};

    util::Table table({"workload", "max_batch", "req/s", "gain",
                       "share", "batch", "p50 ms", "p95 ms", "p99 ms",
                       "done", "rej"});
    std::ostringstream json;
    json << "{\"bench\":\"scaling_serve\",\"workloads\":[";

    int passing = 0;
    for (size_t s = 0; s < subjects.size(); s++) {
        const Subject &subject = subjects[s];
        double base = 0.0;
        double best_gain = 0.0;
        json << (s ? "," : "") << "{\"name\":\"" << subject.name
             << "\",\"points\":[";
        for (size_t b = 0; b < batches.size(); b++) {
            Point point = measure(subject, batches[b]);
            if (batches[b] == 1)
                base = point.throughput;
            double gain =
                base > 0.0 ? point.throughput / base : 0.0;
            if (batches[b] >= 4)
                best_gain = std::max(best_gain, gain);
            table.addRow({subject.name,
                          std::to_string(point.maxBatch),
                          util::fixedStr(point.throughput, 1),
                          util::fixedStr(gain, 2) + "x",
                          util::fixedStr(point.share, 2),
                          util::fixedStr(point.occupancy, 2),
                          util::fixedStr(point.p50Ms, 2),
                          util::fixedStr(point.p95Ms, 2),
                          util::fixedStr(point.p99Ms, 2),
                          std::to_string(point.completed),
                          std::to_string(point.rejected)});
            json << (b ? "," : "") << "{\"max_batch\":"
                 << point.maxBatch << ",\"throughput\":"
                 << point.throughput << ",\"p99_ms\":" << point.p99Ms
                 << ",\"share\":" << point.share << "}";
        }
        if (best_gain >= 1.5)
            passing++;
        json << "],\"best_gain\":" << best_gain << "}";
    }
    json << "],\"passing\":" << passing << "}";

    table.print(std::cout);
    std::cout << "\nGain is throughput versus the max_batch=1 point "
                 "of the same workload under identical load. The "
                 "serving acceptance bar is >= 1.5x at max_batch >= 4 "
                 "on at least two workloads: "
              << passing << "/3 pass.\n"
              << "\nBENCH_JSON " << json.str() << "\n";
    bench::writeBenchJson(argc, argv, json.str());
    return passing >= 2 ? 0 : 1;
}
