/**
 * @file
 * Fig. 2a: end-to-end neural vs symbolic runtime split for all seven
 * workloads.
 *
 * Prints the host-measured split of the instrumented op stream and
 * the RTX 2080 Ti projection of the same stream (the paper's
 * measurement platform), next to the percentages the paper reports.
 */

#include <cstdio>
#include <iostream>
#include <map>

#include "common.hh"
#include "core/report.hh"
#include "sim/device.hh"
#include "sim/projection.hh"
#include "util/format.hh"
#include "util/table.hh"

namespace
{

using namespace nsbench;

/** Paper Fig. 2a neural/symbolic percentages. */
const std::map<std::string, std::pair<double, double>> paperSplit = {
    {"LNN", {54.6, 45.4}},   {"LTN", {48.0, 52.0}},
    {"NVSA", {7.9, 92.1}},   {"NLM", {39.4, 60.6}},
    {"VSAIT", {16.3, 83.7}}, {"ZeroC", {73.2, 26.8}},
    {"PrAE", {19.5, 80.5}},
};

} // namespace

int
main()
{
    bench::printHeader("Neural vs symbolic end-to-end latency split",
                       "Fig. 2a (ISPASS'24 neuro-symbolic "
                       "characterization)");

    util::Table table({"workload", "score", "host-wall",
                       "host neu%", "host sym%", "rtx neu%",
                       "rtx sym%", "paper neu%", "paper sym%"});

    for (const auto &name : bench::paperOrder()) {
        auto run = bench::profileWorkload(name);
        auto split = core::phaseSplit(run.profile);
        auto proj = sim::projectProfile(sim::rtx2080ti(), run.profile);
        auto [paper_n, paper_s] = paperSplit.at(name);

        table.addRow({name, util::fixedStr(run.score, 3),
                      util::humanSeconds(run.wallSeconds),
                      util::fixedStr(100 * split.neuralFraction(), 1),
                      util::fixedStr(100 * split.symbolicFraction(),
                                     1),
                      util::fixedStr(100 * proj.neuralFraction(), 1),
                      util::fixedStr(100 * proj.symbolicFraction(),
                                     1),
                      util::fixedStr(paper_n, 1),
                      util::fixedStr(paper_s, 1)});
    }
    table.print(std::cout);

    std::cout
        << "\nTakeaway 1 check: symbolic phases are substantial in "
           "every workload and dominate the VSA/abduction models "
           "(NVSA, PrAE, VSAIT); ZeroC is the most neural-heavy, as "
           "in the paper.\n";
    return 0;
}
