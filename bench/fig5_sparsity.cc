/**
 * @file
 * Fig. 5: sparsity of the NVSA symbolic stages across attributes.
 *
 * Runs NVSA and reports the recorded zero-fractions of the
 * PMF-to-VSA transform, the rule-probability computation and the
 * VSA-to-PMF transform, per reasoning attribute, plus the analogous
 * PrAE rule-posterior sparsity. The paper reports >95% sparsity with
 * attribute-dependent variation on full-scale RAVEN; our domains are
 * smaller, so the levels are lower but the variation and the
 * unstructured pattern reproduce.
 */

#include <iostream>

#include "common.hh"
#include "core/report.hh"
#include "util/format.hh"
#include "util/table.hh"
#include "workloads/nvsa.hh"
#include "workloads/prae.hh"

int
main()
{
    using namespace nsbench;

    bench::printHeader("Sparsity of NVSA symbolic stages", "Fig. 5");

    workloads::NvsaConfig config;
    config.episodes = 4;
    workloads::NvsaWorkload nvsa(config);
    auto run = bench::profileWorkload(nvsa);

    util::Table table({"stage", "attribute", "elements", "zeros",
                       "sparsity"});
    for (const auto &rec : run.profile.sparsityRecords()) {
        auto slash = rec.stage.find('/');
        std::string stage = rec.stage.substr(0, slash);
        std::string attr = slash == std::string::npos
                               ? "-"
                               : rec.stage.substr(slash + 1);
        table.addRow({stage, attr, std::to_string(rec.total),
                      std::to_string(rec.zeros),
                      util::percentStr(rec.ratio(), 2)});
    }
    table.print(std::cout);

    std::cout << "\nPrAE rule-posterior sparsity (the exhaustive "
                 "backend's probability vectors):\n";
    workloads::PraeWorkload prae(workloads::PraeConfig{2, 4});
    auto prae_run = bench::profileWorkload(prae);
    util::Table prae_table({"stage", "sparsity"});
    for (const auto &rec : prae_run.profile.sparsityRecords()) {
        if (rec.stage.find("prae_rule_posterior") == 0)
            prae_table.addRow(
                {rec.stage, util::percentStr(rec.ratio(), 2)});
    }
    prae_table.print(std::cout);

    std::cout
        << "\nTakeaway 7 check: all symbolic stages are sparse, the "
           "level varies by attribute (the paper's 'variations for "
           "specific attributes'), and the pattern is unstructured. "
           "Paper levels exceed 95% because full RAVEN domains are "
           "combinatorially larger than our synthetic ones.\n";
    return 0;
}
