/**
 * @file
 * Fig. 4: operation-dependency analysis.
 *
 * Each workload's coarse stage DAG is weighted with measured region
 * runtimes; the bench reports the critical path, the symbolic share
 * of it, and the ideal-parallelism bound. The paper's observation
 * (Takeaway 5): symbolic stages depend on neural results (or compile
 * into the neural structure) and therefore sit on the end-to-end
 * critical path.
 */

#include <fstream>
#include <iostream>

#include "common.hh"
#include "core/opgraph.hh"
#include "workloads/register.hh"
#include "util/format.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace nsbench;
    bool dump_dot = argc > 1 && std::string(argv[1]) == "--dot";

    bench::printHeader("Operation-graph critical-path analysis",
                       "Fig. 4");

    util::Table table({"workload", "stages", "critical-path",
                       "symbolic-on-path%", "parallel-bound",
                       "path"});

    for (const auto &name : bench::paperOrder()) {
        workloads::registerAllWorkloads();
        auto workload = core::WorkloadRegistry::global().create(name);
        auto run = bench::profileWorkload(*workload);

        core::OpGraph graph = workload->opGraph();
        for (core::NodeId id = 0; id < graph.size(); id++) {
            auto &node = graph.node(id);
            node.seconds =
                run.profile.regionTotals(node.name).seconds;
        }

        auto path = graph.criticalPath();
        std::string path_str;
        for (size_t i = 0; i < path.size(); i++) {
            if (i)
                path_str += " -> ";
            std::string label = graph.node(path[i]).name;
            auto slash = label.find('/');
            path_str += slash == std::string::npos
                            ? label
                            : label.substr(slash + 1);
        }

        table.addRow(
            {name, std::to_string(graph.size()),
             util::humanSeconds(graph.criticalPathSeconds()),
             util::fixedStr(100 * graph.symbolicCriticalFraction(),
                            1),
             util::fixedStr(graph.parallelSpeedupBound(), 2) + "x",
             path_str});

        if (dump_dot) {
            std::ofstream dot(name + "_opgraph.dot");
            dot << graph.toDot(name);
        }
    }
    table.print(std::cout);

    std::cout << "\nTakeaway 5 check: every workload's symbolic "
                 "stages lie on the critical path (non-zero symbolic "
                 "share), and the parallel-speedup bounds stay close "
                 "to 1x — the pipelines are inherently sequential.\n";
    if (dump_dot)
        std::cout << "DOT files written to <workload>_opgraph.dot\n";
    return 0;
}
