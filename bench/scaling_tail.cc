/**
 * @file
 * Tail tolerance: hedged requests + circuit breaker vs a slow shard.
 *
 * The failure mode of DESIGN.md §7i: one backend in a sharded ring
 * answers every request, just ~100ms slower than its peers. The slow
 * shard is a delay-decorated replica factory (an unconditional stall
 * before each run()): the failpoint registry is process-global and
 * the server evaluates `serve.worker.delay` in every worker, so an
 * in-process ring scopes slowness by decoration — the spec-armed
 * site covers the multi-process CLI path (CI's loopback smoke) and
 * the exactly-once arm below. Without tail tolerance, the
 * ~1/4 of keys placed on that shard drag the fleet p99 to the full
 * injected delay. With hedging + the latency breaker, a duplicate
 * fires to a healthy ring neighbour after the workload's tracked p95
 * and the breaker routes around the sick shard once its latency EWMA
 * crosses the peer reference.
 *
 * Three gates:
 *  1. p99 with hedging+breaker is >= 2x better than the baseline
 *     (hedging off, breaker statistically inert — the old binary
 *     down-marking behaviour).
 *  2. Scores through the hedged router are byte-identical to direct
 *     replica execution for every seed — first-response-wins is safe
 *     because both responses are the same bytes.
 *  3. Exactly-once: under three seeded mixed fail+delay schedules,
 *     every submitted request's callback fires exactly once.
 *
 * Not a paper figure: this tracks the reproduction's own serving
 * runtime (tail-tolerant serving, Sec. V deployment).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <iostream>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hh"
#include "core/workload.hh"
#include "net/client.hh"
#include "net/router.hh"
#include "net/tcp_server.hh"
#include "serve/presets.hh"
#include "serve/server.hh"
#include "util/failpoint.hh"
#include "util/format.hh"
#include "util/table.hh"
#include "workloads/register.hh"

namespace
{

using namespace nsbench;

constexpr const char *kWorkload = "LNN";
constexpr uint64_t kSeedUniverse = 64;
constexpr int kBackends = 4;
/**
 * The injected slow-shard latency: 100ms of *waiting*, not compute —
 * an order of magnitude above LNN's ~7ms service time, the regime
 * hedging is built for (the duplicate runs while the primary sleeps).
 */
constexpr uint64_t kSlowDelayUs = 100000;
/**
 * Deliberately light load: closed-loop drivers sized so the CPU
 * never saturates (this box may have a single core) — the measured
 * tail must come from the injected delay, not from run-queue
 * contention that hedging could only amplify.
 */
constexpr int kDrivers = 2;
constexpr int kCallsPerDriver = 150;

/**
 * Forwards everything to the wrapped workload, stalling before each
 * run() — the injected sleep that makes one backend slow without
 * changing its answers.
 */
class DelayedWorkload : public core::Workload
{
  public:
    explicit DelayedWorkload(std::unique_ptr<core::Workload> inner)
        : inner_(std::move(inner))
    {
    }

    std::string name() const override { return inner_->name(); }
    core::Paradigm paradigm() const override
    {
        return inner_->paradigm();
    }
    std::string taskDescription() const override
    {
        return inner_->taskDescription();
    }
    void setUp(uint64_t seed) override { inner_->setUp(seed); }
    double
    run() override
    {
        // Latency only, never the score — the stall decides when
        // the answer arrives, not what it is.
        std::this_thread::sleep_for(
            std::chrono::microseconds(kSlowDelayUs));
        return inner_->run();
    }
    void
    reseedEpisodes(uint64_t seed) override
    {
        inner_->reseedEpisodes(seed);
    }
    bool seedSensitive() const override
    {
        return inner_->seedSensitive();
    }
    core::OpGraph opGraph() const override
    {
        return inner_->opGraph();
    }
    uint64_t storageBytes() const override
    {
        return inner_->storageBytes();
    }

  private:
    std::unique_ptr<core::Workload> inner_;
};

serve::ServerOptions
backendOptions(bool slow)
{
    serve::ServerOptions options;
    options.workloads = {kWorkload};
    options.workers = 2;
    options.maxBatch = 1;
    options.maxWaitUs = 500;
    // No result cache: a cached answer skips run() and with it the
    // injected delay, which would hide the very tail under test.
    options.resultCache = false;
    if (slow)
        options.factory = [](const std::string &name) {
            return std::make_unique<DelayedWorkload>(
                serve::serveFactory(name));
        };
    else
        options.factory = serve::serveFactory;
    return options;
}

struct Backend
{
    std::unique_ptr<serve::Server> server;
    std::unique_ptr<net::TcpServer> tcp;
};

std::unique_ptr<Backend>
makeBackend(bool slow)
{
    auto backend = std::make_unique<Backend>();
    backend->server =
        std::make_unique<serve::Server>(backendOptions(slow));
    backend->tcp =
        std::make_unique<net::TcpServer>(*backend->server);
    return backend;
}

/** One measured arm of the comparison. */
struct Arm
{
    double p50Ms = 0.0;
    double p99Ms = 0.0;
    uint64_t completed = 0;
    uint64_t hedgesSent = 0;
    uint64_t hedgesWon = 0;
    uint64_t cancels = 0;
    uint64_t trips = 0;
    bool byteIdentical = true;
};

net::RouterOptions
routerOptions(bool tail_tolerant)
{
    net::RouterOptions options;
    // Long open window: every half-open probe to the sick shard
    // costs one request the injected delay unless its hedge covers
    // it, so probe sparingly.
    options.retryDownSeconds = 2.0;
    if (tail_tolerant) {
        options.hedging = true;
        options.hedgeMinSamples = 16;
        // Cap the hedge delay between the healthy service time
        // (~7ms — hedging sooner would duplicate every request) and
        // the injected 100ms (the cumulative p95 includes sick-era
        // samples; waiting that long protects nothing).
        options.hedgeMaxDelaySeconds = 0.020;
    } else {
        // Baseline: no hedging, and a breaker that can only trip on
        // hard unreachability (the pre-tail-tolerance router).
        options.hedging = false;
        options.breaker.minSamples =
            std::numeric_limits<uint64_t>::max();
    }
    return options;
}

Arm
measureArm(bool tail_tolerant, std::vector<double> *scores)
{
    std::vector<std::unique_ptr<Backend>> fleet;
    net::RouterOptions router_options =
        routerOptions(tail_tolerant);
    for (int i = 0; i < kBackends; i++) {
        fleet.push_back(makeBackend(/*slow=*/i == 0));
        router_options.backends.push_back(
            "127.0.0.1:" +
            std::to_string(fleet.back()->tcp->port()));
    }
    net::Router router(router_options);

    net::ClientOptions client_options;
    client_options.port = router.port();
    net::Client warm_client(client_options);

    // Warm: one pass over the universe primes every backend's
    // replicas, the router's p95 tracker and (in the tail-tolerant
    // arm) gives the breaker enough samples to judge the sick shard.
    // Scores recorded here also feed the byte-identity gate.
    scores->assign(kSeedUniverse, 0.0);
    Arm arm;
    for (uint64_t seed = 0; seed < kSeedUniverse; seed++) {
        serve::Response response =
            warm_client.call(kWorkload, seed);
        if (response.status != serve::RequestStatus::Ok) {
            arm.byteIdentical = false;
            continue;
        }
        (*scores)[seed] = response.score;
    }
    warm_client.close();

    // Measured phase: closed-loop drivers; latencies are kept raw
    // and sorted afterwards, so the percentiles are exact rather
    // than streaming estimates.
    std::vector<double> latencies;
    std::mutex latency_mu;
    std::atomic<uint64_t> completed{0};
    std::vector<std::thread> drivers;
    for (int d = 0; d < kDrivers; d++)
        drivers.emplace_back([&, d] {
            net::Client client(client_options);
            uint64_t state = 0x9e3779b97f4a7c15ULL * (d + 1);
            std::vector<double> local;
            local.reserve(kCallsPerDriver);
            for (int i = 0; i < kCallsPerDriver; i++) {
                state = state * 6364136223846793005ULL +
                        1442695040888963407ULL;
                uint64_t seed = (state >> 33) % kSeedUniverse;
                auto start = std::chrono::steady_clock::now();
                serve::Response response =
                    client.call(kWorkload, seed);
                double seconds =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
                if (response.status == serve::RequestStatus::Ok) {
                    completed.fetch_add(1);
                    local.push_back(seconds);
                    // Repeat seeds must keep reproducing the warm
                    // pass bytes, whichever backend answered.
                    double expected = (*scores)[seed];
                    if (std::memcmp(&response.score, &expected,
                                    sizeof expected) != 0)
                        arm.byteIdentical = false;
                }
            }
            client.close();
            std::lock_guard<std::mutex> lock(latency_mu);
            latencies.insert(latencies.end(), local.begin(),
                             local.end());
        });
    for (auto &driver : drivers)
        driver.join();

    std::sort(latencies.begin(), latencies.end());
    auto quantile = [&latencies](double q) {
        if (latencies.empty())
            return 0.0;
        size_t index = static_cast<size_t>(
            q * static_cast<double>(latencies.size() - 1));
        return latencies[index];
    };
    arm.p50Ms = quantile(0.50) * 1e3;
    arm.p99Ms = quantile(0.99) * 1e3;
    arm.completed = completed.load();
    net::HedgeStats hedges = router.hedgeStats();
    arm.hedgesSent = hedges.hedgesSent;
    arm.hedgesWon = hedges.hedgesWon;
    arm.cancels = hedges.cancelsSent;
    for (const net::BackendStats &stats : router.backendStats())
        arm.trips += stats.downMarks;

    router.shutdown();
    for (auto &backend : fleet)
        backend->tcp->shutdown();
    return arm;
}

/**
 * Exactly-once gate: a seeded mixed fail+delay schedule (worker
 * failures and 20ms worker delays on every backend via the
 * spec-armed sites, plus the always-slow decorated shard), every
 * submitted request's callback must fire exactly once — no loss, no
 * duplication, whatever mix of hedges, cancels and retries the run
 * produced.
 */
bool
exactlyOnceUnder(uint64_t schedule_seed)
{
    std::ostringstream spec;
    spec << "serve.worker.run=0.05@" << schedule_seed
         << ",serve.worker.delay=1.0@" << schedule_seed << "~20000";
    std::string error = util::failpoints::configure(spec.str());
    if (!error.empty()) {
        std::cerr << "failpoint config failed: " << error << "\n";
        std::exit(1);
    }

    std::vector<std::unique_ptr<Backend>> fleet;
    net::RouterOptions router_options =
        routerOptions(/*tail_tolerant=*/true);
    router_options.hedgeMinSamples = 4; // Hedge early and often.
    for (int i = 0; i < kBackends; i++) {
        fleet.push_back(makeBackend(/*slow=*/i == 0));
        router_options.backends.push_back(
            "127.0.0.1:" +
            std::to_string(fleet.back()->tcp->port()));
    }
    net::Router router(router_options);

    net::ClientOptions client_options;
    client_options.port = router.port();
    net::Client client(client_options);

    constexpr int kRequests = 200;
    std::vector<std::atomic<int>> callbacks(kRequests);
    for (auto &count : callbacks)
        count.store(0);

    uint64_t submitted = 0;
    for (int i = 0; i < kRequests; i++) {
        serve::RequestStatus status = client.submitSeeded(
            kWorkload, static_cast<uint64_t>(i) % kSeedUniverse, 0,
            [&callbacks, i](const serve::Response &) {
                callbacks[i].fetch_add(1);
            });
        if (status == serve::RequestStatus::Ok)
            submitted++;
        else
            callbacks[i].store(-1); // Rejected: no callback due.
    }

    // Drain: every admitted request must terminate (answer, hedge
    // winner, cancel echo or disconnect failure all count).
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(30);
    bool drained = false;
    while (std::chrono::steady_clock::now() < deadline) {
        uint64_t done = 0;
        for (int i = 0; i < kRequests; i++)
            if (callbacks[i].load() != 0)
                done++;
        if (done == static_cast<uint64_t>(kRequests)) {
            drained = true;
            break;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(20));
    }

    // Settle, then check for duplicates: nothing may fire twice.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    bool exactly_once = drained;
    for (int i = 0; i < kRequests; i++) {
        int count = callbacks[i].load();
        if (count != 1 && count != -1)
            exactly_once = false;
    }

    client.close();
    router.shutdown();
    for (auto &backend : fleet)
        backend->tcp->shutdown();
    util::failpoints::configure("");
    return exactly_once;
}

} // namespace

int
main(int argc, char **argv)
{
    workloads::registerAllWorkloads();
    bench::printHeader("Tail-tolerant serving",
                       "runtime extra (DESIGN.md §7i)");

    std::cout << "one of " << kBackends << " backends stalls "
              << kSlowDelayUs / 1000 << "ms before every dispatch\n\n";

    std::vector<double> baseline_scores, hedged_scores;
    Arm baseline = measureArm(false, &baseline_scores);
    Arm hedged = measureArm(true, &hedged_scores);

    util::Table table({"arm", "p50", "p99", "done", "hedges",
                       "hedge wins", "cancels", "trips"});
    table.addRow({"baseline (no hedging)",
                  util::fixedStr(baseline.p50Ms, 2) + "ms",
                  util::fixedStr(baseline.p99Ms, 2) + "ms",
                  std::to_string(baseline.completed),
                  std::to_string(baseline.hedgesSent),
                  std::to_string(baseline.hedgesWon),
                  std::to_string(baseline.cancels),
                  std::to_string(baseline.trips)});
    table.addRow({"hedging + breaker",
                  util::fixedStr(hedged.p50Ms, 2) + "ms",
                  util::fixedStr(hedged.p99Ms, 2) + "ms",
                  std::to_string(hedged.completed),
                  std::to_string(hedged.hedgesSent),
                  std::to_string(hedged.hedgesWon),
                  std::to_string(hedged.cancels),
                  std::to_string(hedged.trips)});
    table.print(std::cout);

    double ratio = hedged.p99Ms > 0.0
                       ? baseline.p99Ms / hedged.p99Ms
                       : 0.0;
    bool p99_pass = ratio >= 2.0;

    // Byte identity: both arms individually stable, and identical
    // to each other and to direct replica execution.
    bool byte_identical =
        baseline.byteIdentical && hedged.byteIdentical;
    auto replica = serve::serveFactory(kWorkload);
    replica->setUp(serve::ServerOptions{}.modelSeed);
    for (uint64_t seed = 0; seed < kSeedUniverse; seed++) {
        replica->reseedEpisodes(seed);
        double direct = replica->run();
        if (std::memcmp(&hedged_scores[seed], &direct,
                        sizeof direct) != 0 ||
            std::memcmp(&baseline_scores[seed], &direct,
                        sizeof direct) != 0)
            byte_identical = false;
    }

    bool exactly_once = true;
    for (uint64_t schedule : {101ULL, 202ULL, 303ULL})
        if (!exactlyOnceUnder(schedule))
            exactly_once = false;

    bool pass = p99_pass && byte_identical && exactly_once;
    std::cout << "\np99 improvement (baseline / hedged): "
              << util::fixedStr(ratio, 2) << "x (need >= 2.0x, "
              << (p99_pass ? "pass" : "FAIL") << ")\n"
              << "byte-identical scores: "
              << (byte_identical ? "pass" : "FAIL") << "\n"
              << "exactly-once callbacks under 3 fail+delay "
                 "schedules: "
              << (exactly_once ? "pass" : "FAIL") << "\n";

    std::ostringstream json;
    json << "{\"bench\":\"scaling_tail\",\"p99_baseline_ms\":"
         << baseline.p99Ms << ",\"p99_hedged_ms\":" << hedged.p99Ms
         << ",\"ratio\":" << ratio
         << ",\"hedges_sent\":" << hedged.hedgesSent
         << ",\"hedges_won\":" << hedged.hedgesWon
         << ",\"cancels\":" << hedged.cancels
         << ",\"breaker_trips\":" << hedged.trips
         << ",\"byte_identical\":"
         << (byte_identical ? "true" : "false")
         << ",\"exactly_once\":" << (exactly_once ? "true" : "false")
         << ",\"pass\":" << (pass ? "true" : "false") << "}";
    std::cout << "\nBENCH_JSON " << json.str() << "\n";
    bench::writeBenchJson(argc, argv, json.str());
    return pass ? 0 : 1;
}
