/**
 * @file
 * Fig. 2c: NVSA end-to-end runtime across RPM task sizes.
 *
 * Runs NVSA at panel grid sizes 1x1, 2x2 and 3x3 and reports total
 * runtime growth plus the neural/symbolic split at each size. The
 * paper's observations: total runtime grows steeply with task size
 * (5.02x from 2x2 to 3x3 in their setup) while the symbolic share
 * stays roughly stable (91.59% -> 87.35%).
 */

#include <iostream>

#include "common.hh"
#include "core/report.hh"
#include "sim/device.hh"
#include "sim/projection.hh"
#include "util/format.hh"
#include "util/table.hh"
#include "workloads/nvsa.hh"

int
main()
{
    using namespace nsbench;

    bench::printHeader("NVSA runtime vs RPM task size", "Fig. 2c");

    util::Table table({"task-size", "host-wall", "host sym%",
                       "rtx-projected", "rtx sym%", "growth-vs-1x1"});

    double base_wall = 0.0;
    double wall_2x2 = 0.0, wall_3x3 = 0.0;
    for (int grid : {1, 2, 3}) {
        workloads::NvsaConfig config;
        config.grid = grid;
        config.episodes = 2;
        workloads::NvsaWorkload workload(config);
        auto run = bench::profileWorkload(workload);
        auto split = core::phaseSplit(run.profile);
        auto proj = sim::projectProfile(sim::rtx2080ti(), run.profile);

        if (grid == 1)
            base_wall = run.wallSeconds;
        if (grid == 2)
            wall_2x2 = run.wallSeconds;
        if (grid == 3)
            wall_3x3 = run.wallSeconds;

        table.addRow(
            {std::to_string(grid) + "x" + std::to_string(grid),
             util::humanSeconds(run.wallSeconds),
             util::fixedStr(100 * split.symbolicFraction(), 2),
             util::humanSeconds(proj.totalSeconds),
             util::fixedStr(100 * proj.symbolicFraction(), 2),
             util::fixedStr(run.wallSeconds / base_wall, 2) + "x"});
    }
    table.print(std::cout);

    std::cout << "\n2x2 -> 3x3 total-runtime growth: "
              << util::fixedStr(wall_3x3 / wall_2x2, 2)
              << "x (paper: 5.02x). Symbolic share stays dominant "
                 "across task sizes (paper: 91.59% -> 87.35%).\n";
    return 0;
}
