/**
 * @file
 * Tab. III: the selected-workload census — categories, learning
 * approaches, applications, datasets (our synthetic substitutes),
 * datatypes and model structures — cross-checked against the live
 * registry.
 */

#include <iostream>
#include <map>

#include "core/workload.hh"
#include "util/table.hh"
#include "workloads/register.hh"

namespace
{

struct Tab3Row
{
    const char *dataset;     ///< Our synthetic substitute.
    const char *paperDataset; ///< What the paper's models used.
    const char *neuralModel;
    const char *symbolicModel;
};

const std::map<std::string, Tab3Row> rows = {
    {"LNN",
     {"generated university KB", "LUBM / TPTP", "graph of logic neurons",
      "first-order logic (truth bounds)"}},
    {"LTN",
     {"generated smokers-friends-cancer", "UCI / crabs", "MLP",
      "fuzzy first-order logic"}},
    {"NVSA",
     {"procedural RPM puzzles", "RAVEN / I-RAVEN / PGM", "ConvNet",
      "holographic vectors + codebooks"}},
    {"NLM",
     {"generated family graphs", "family graph / sorting",
      "sequential tensor MLPs", "probabilistic logic wiring"}},
    {"VSAIT",
     {"procedural texture domains", "GTA / Cityscapes", "ConvNet",
      "holographic vectors"}},
    {"ZeroC",
     {"procedural concept scenes", "abstraction corpus",
      "energy-based network", "concept graphs"}},
    {"PrAE",
     {"procedural RPM puzzles", "RAVEN / I-RAVEN / PGM", "ConvNet",
      "probability + logic rules"}},
};

} // namespace

int
main()
{
    using namespace nsbench;

    std::cout << "\n=== Selected neuro-symbolic workloads ===\n"
                 "reproduces: Tab. III\n\n";

    workloads::registerAllWorkloads();
    auto &registry = core::WorkloadRegistry::global();

    util::Table table({"workload", "category", "application",
                       "dataset (ours)", "dataset (paper)",
                       "neural model", "symbolic model"});
    for (const auto &name : registry.names()) {
        auto w = registry.create(name);
        const auto &row = rows.at(name);
        table.addRow({w->name(),
                      std::string(core::paradigmName(w->paradigm())),
                      w->taskDescription(), row.dataset,
                      row.paperDataset, row.neuralModel,
                      row.symbolicModel});
    }
    table.print(std::cout);

    std::cout << "\nAll seven computation datatypes are FP32 as in "
                 "the paper (ZeroC's INT64 graph bookkeeping is "
                 "index arithmetic in both implementations).\n";
    return 0;
}
