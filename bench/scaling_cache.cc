/**
 * @file
 * Multi-level memoization: result-cache speedup and score identity.
 *
 * Three parts, two of which gate the exit code:
 *
 *  1. Identity gate — for all seven paper workloads at the serve
 *     presets, scores must be byte-identical with caching off and on
 *     (result cache + symbolic precompute cache, across different
 *     replica counts). Caching is a pure memoization layer: any
 *     difference at all is a correctness bug, so the comparison is
 *     exact double equality, not a tolerance.
 *
 *  2. Throughput gate — NVSA (seed-sensitive, CPU-bound) driven with
 *     a Zipf-skewed 16-seed universe at the default skew (s = 1.1)
 *     and batch-equal settings must sustain >= 3x the cache-off
 *     throughput with a hit rate >= 50%.
 *
 *  3. Sweep — Zipf skew {0.7, 1.1, 1.4} x cache size {tiny, ample},
 *     reporting throughput, hit rate and evictions at every point.
 *     The tiny budget holds ~2 of the 16 hot entries, so it shows the
 *     LRU keeping the head of the popularity distribution.
 *
 * Not a paper figure: this tracks the reproduction's own memoization
 * layer, motivated by the redundant-computation observations of
 * Sec. V.
 */

#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cache/config.hh"
#include "common.hh"
#include "serve/loadgen.hh"
#include "serve/presets.hh"
#include "serve/server.hh"
#include "util/format.hh"
#include "util/table.hh"
#include "workloads/register.hh"

namespace
{

using namespace nsbench;

/** One measured loadgen operating point. */
struct Point
{
    double throughput = 0.0;
    double hitRate = 0.0;
    uint64_t completed = 0;
    uint64_t executions = 0;
    uint64_t evictions = 0;
    uint64_t entries = 0;
};

/**
 * Runs the standard cache subject — NVSA at the serve preset under
 * closed-loop Zipf load over a 16-seed universe — at one operating
 * point. The cache is pre-warmed with every seed in the universe so
 * the measured window reflects steady state, and metrics are reset
 * after the warm-up either way to keep the windows comparable.
 */
Point
measure(bool cache_on, uint64_t cache_bytes, size_t cache_shards,
        double zipf, double duration_seconds)
{
    const uint64_t universe = 16;

    serve::ServerOptions server_options;
    server_options.workloads = {"NVSA"};
    server_options.workers = 2;
    server_options.maxBatch = 4;
    server_options.maxWaitUs = 2000;
    server_options.factory = serve::serveFactory;
    server_options.resultCache = cache_on;
    server_options.cacheBytes = cache_bytes;
    server_options.cacheShards = cache_shards;

    serve::LoadgenOptions load_options;
    load_options.openLoop = false;
    load_options.clients = 16;
    load_options.durationSeconds = duration_seconds;
    load_options.seedUniverse = universe;
    load_options.zipfExponent = zipf;

    serve::Server server(std::move(server_options));
    for (uint64_t seed = 0; seed < universe; seed++)
        server.call("NVSA", seed);
    server.resetMetrics();

    serve::LoadgenReport report =
        serve::runLoadgen(server, load_options);
    serve::WorkloadMetrics metrics =
        server.metrics().workload("NVSA");

    Point point;
    point.throughput = report.throughput();
    point.hitRate = metrics.cacheHitRate();
    point.completed = metrics.completed;
    point.executions = metrics.executions;
    if (const cache::ResultCache *rc = server.resultCache()) {
        cache::ResultCacheStats stats = rc->stats();
        point.evictions = stats.evictions;
        point.entries = stats.entries;
    }
    server.shutdown();
    return point;
}

} // namespace

int
main(int argc, char **argv)
{
    workloads::registerAllWorkloads();
    bench::printHeader(
        "Multi-level memoization: speedup and score identity",
        "runtime extra (Sec. V redundant computation)");

    std::ostringstream json;
    json << "{\"bench\":\"scaling_cache\"";

    // Part 1: byte-identical scores, cache off vs on, for all seven
    // workloads at three episode seeds. The off pass runs with both
    // cache levels disabled on a single replica; the on pass enables
    // both levels, serves from two replicas, and asks for every seed
    // twice so both the miss path and the hit path are compared.
    const std::vector<uint64_t> seeds = {1, 2, 3};
    std::vector<std::vector<double>> baseline;
    cache::setEnabled(false);
    {
        serve::ServerOptions off;
        off.workloads = bench::paperOrder();
        off.workers = 1;
        off.maxBatch = 4;
        off.factory = serve::serveFactory;
        off.resultCache = false;
        serve::Server server(std::move(off));
        for (const std::string &name : bench::paperOrder()) {
            std::vector<double> scores;
            for (uint64_t seed : seeds)
                scores.push_back(server.call(name, seed).score);
            baseline.push_back(scores);
        }
    }

    int identical = 0;
    const int total = static_cast<int>(bench::paperOrder().size());
    util::Table identity_table(
        {"workload", "seed 1", "seed 2", "seed 3", "identical"});
    cache::setEnabled(true);
    {
        serve::ServerOptions on;
        on.workloads = bench::paperOrder();
        on.workers = 2;
        on.maxBatch = 4;
        on.factory = serve::serveFactory;
        on.resultCache = true;
        serve::Server server(std::move(on));
        for (size_t w = 0; w < bench::paperOrder().size(); w++) {
            const std::string &name = bench::paperOrder()[w];
            bool same = true;
            for (size_t s = 0; s < seeds.size(); s++) {
                double miss = server.call(name, seeds[s]).score;
                double hit = server.call(name, seeds[s]).score;
                same = same && miss == baseline[w][s] &&
                       hit == baseline[w][s];
            }
            if (same)
                identical++;
            identity_table.addRow(
                {name, util::fixedStr(baseline[w][0], 4),
                 util::fixedStr(baseline[w][1], 4),
                 util::fixedStr(baseline[w][2], 4),
                 same ? "yes" : "NO"});
        }
    }
    cache::resetEnabled();

    std::cout << "Score identity, cache off vs on (exact double "
                 "equality, miss and hit paths):\n";
    identity_table.print(std::cout);
    std::cout << "\n";
    json << ",\"identity_pass\":" << identical
         << ",\"identity_total\":" << total;

    // Part 2: the throughput gate at batch-equal settings and the
    // default skew. Cache off first so the on pass cannot borrow its
    // precompute state.
    cache::setEnabled(false);
    Point off = measure(false, 64ull << 20, 8, 1.1, 1.5);
    cache::setEnabled(true);
    Point on = measure(true, 64ull << 20, 8, 1.1, 1.5);
    cache::resetEnabled();

    double speedup =
        off.throughput > 0.0 ? on.throughput / off.throughput : 0.0;
    bool gate_pass = speedup >= 3.0 && on.hitRate >= 0.5;

    util::Table gate_table({"cache", "req/s", "hit%", "done", "runs"});
    gate_table.addRow({"off", util::fixedStr(off.throughput, 1), "-",
                       std::to_string(off.completed),
                       std::to_string(off.executions)});
    gate_table.addRow({"on", util::fixedStr(on.throughput, 1),
                       util::fixedStr(on.hitRate * 100.0, 1),
                       std::to_string(on.completed),
                       std::to_string(on.executions)});
    std::cout << "Throughput gate (NVSA, universe 16, zipf 1.1, "
                 "max_batch 4, 2 workers):\n";
    gate_table.print(std::cout);
    std::cout << "\nspeedup " << util::fixedStr(speedup, 2)
              << "x (gate >= 3x with hit rate >= 50%): "
              << (gate_pass ? "pass" : "FAIL") << "\n\n";
    json << ",\"gate\":{\"off_rps\":" << off.throughput
         << ",\"on_rps\":" << on.throughput
         << ",\"speedup\":" << speedup
         << ",\"hit_rate\":" << on.hitRate
         << ",\"pass\":" << (gate_pass ? "true" : "false") << "}";

    // Part 3: skew x capacity sweep. The tiny budget (one shard, two
    // entries) forces the LRU to track the popularity head; the ample
    // budget holds the whole universe.
    struct Capacity
    {
        const char *label;
        uint64_t bytes;
        size_t shards;
    };
    const std::vector<double> skews = {0.7, 1.1, 1.4};
    const std::vector<Capacity> capacities = {
        {"tiny", 256, 1},
        {"ample", 64ull << 20, 8},
    };

    util::Table sweep_table({"zipf", "cache", "req/s", "hit%",
                             "entries", "evicted"});
    json << ",\"sweep\":[";
    bool first = true;
    cache::setEnabled(true);
    for (double skew : skews) {
        for (const Capacity &cap : capacities) {
            Point point =
                measure(true, cap.bytes, cap.shards, skew, 0.5);
            sweep_table.addRow(
                {util::fixedStr(skew, 1), cap.label,
                 util::fixedStr(point.throughput, 1),
                 util::fixedStr(point.hitRate * 100.0, 1),
                 std::to_string(point.entries),
                 std::to_string(point.evictions)});
            json << (first ? "" : ",") << "{\"zipf\":" << skew
                 << ",\"cache_bytes\":" << cap.bytes
                 << ",\"rps\":" << point.throughput
                 << ",\"hit_rate\":" << point.hitRate
                 << ",\"evictions\":" << point.evictions << "}";
            first = false;
        }
    }
    cache::resetEnabled();
    json << "]}";

    std::cout << "Skew x capacity sweep (cache on):\n";
    sweep_table.print(std::cout);

    bool pass = identical == total && gate_pass;
    std::cout << "\nAcceptance: scores identical on " << identical
              << "/" << total << " workloads, throughput gate "
              << (gate_pass ? "pass" : "FAIL") << " -> "
              << (pass ? "PASS" : "FAIL") << "\n"
              << "\nBENCH_JSON " << json.str() << "\n";
    bench::writeBenchJson(argc, argv, json.str());
    return pass ? 0 : 1;
}
