/**
 * @file
 * Shared helpers for the per-figure bench binaries.
 */

#ifndef NSBENCH_BENCH_COMMON_HH
#define NSBENCH_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "core/profiler.hh"
#include "core/workload.hh"

namespace nsbench::bench
{

/** Result of one profiled workload execution. */
struct ProfiledRun
{
    std::string name;       ///< Workload name.
    double score = 0.0;     ///< Task-quality score in [0, 1].
    double wallSeconds = 0.0; ///< Wall time of run().
    uint64_t storageBytes = 0; ///< Persistent model bytes.
    core::Profiler profile; ///< Captured op stream.
};

/**
 * Instantiates, seeds and runs one registered workload, capturing its
 * op stream. The global profiler is left reset.
 */
ProfiledRun profileWorkload(const std::string &name,
                            uint64_t seed = 42);

/** Runs a pre-built workload the same way. */
ProfiledRun profileWorkload(core::Workload &workload,
                            uint64_t seed = 42);

/** The seven paper workloads in the paper's presentation order. */
const std::vector<std::string> &paperOrder();

/** Prints the standard bench header with the figure/table reference. */
void printHeader(const std::string &title, const std::string &paper_ref);

/**
 * One-line JSON object describing this run's provenance: the git
 * commit and build type baked in at configure time, plus the
 * runtime-selected knobs (threads, simd backend, arena allocator,
 * cache enablement) read at call time.
 */
std::string runMetadataJson();

/**
 * Machine-readable result emission: when the bench was invoked with
 * `--json <path>` (or `--json=<path>`), writes @p json — the same
 * payload the bench prints on its BENCH_JSON stdout line — to that
 * file, with runMetadataJson() injected as a leading "meta" field so
 * archived results carry their provenance. Without the flag this is
 * a no-op, so benches call it unconditionally.
 */
void writeBenchJson(int argc, char **argv, const std::string &json);

} // namespace nsbench::bench

#endif // NSBENCH_BENCH_COMMON_HH
