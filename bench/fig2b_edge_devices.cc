/**
 * @file
 * Fig. 2b: NVSA and NLM across edge and desktop platforms.
 *
 * The host-measured op streams of NVSA and NLM are projected onto the
 * analytical device models of the Jetson TX2, Xavier NX and RTX
 * 2080 Ti. The paper's claims are shape claims: the edge SoCs are an
 * order of magnitude slower than the discrete GPU, real-time deadlines
 * are missed everywhere, and the symbolic share persists across
 * devices.
 */

#include <iostream>

#include "common.hh"
#include "sim/device.hh"
#include "sim/projection.hh"
#include "util/format.hh"
#include "util/logging.hh"
#include "util/table.hh"

int
main()
{
    using namespace nsbench;

    bench::printHeader("Cross-device runtime projection (NVSA, NLM)",
                       "Fig. 2b");

    const sim::DeviceSpec *devices[] = {&sim::jetsonTx2(),
                                        &sim::xavierNx(),
                                        &sim::rtx2080ti()};

    util::Table table({"workload", "device", "projected-time",
                       "neural%", "symbolic%", "vs-RTX"});

    for (const auto &name : {std::string("NVSA"), std::string("NLM")}) {
        auto run = bench::profileWorkload(name);
        double rtx_seconds =
            sim::projectProfile(sim::rtx2080ti(), run.profile)
                .totalSeconds;
        for (const auto *device : devices) {
            auto proj = sim::projectProfile(*device, run.profile);
            table.addRow(
                {name, device->name,
                 util::humanSeconds(proj.totalSeconds),
                 util::fixedStr(100 * proj.neuralFraction(), 1),
                 util::fixedStr(100 * proj.symbolicFraction(), 1),
                 util::fixedStr(proj.totalSeconds / rtx_seconds, 2) +
                     "x"});
        }
    }
    table.print(std::cout);

    std::cout << "\nPaper reference: NVSA RPM takes 380 s on the RTX "
                 "2080 Ti and 7507 s on the TX2 (a ~20x gap); the "
                 "edge/desktop ordering and the persistence of the "
                 "symbolic share across devices are the reproduced "
                 "shapes.\n";
    return 0;
}
