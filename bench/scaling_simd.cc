/**
 * @file
 * Scalar-vs-AVX2 speedup curves for the vectorized kernel backend.
 *
 * Runs each hot kernel single-threaded under the scalar backend and
 * again under the AVX2 backend, reporting wall time and speedup while
 * checking that the two backends agree (bit-identical for maps and
 * packed-binary kernels, <= 1e-5 relative for float reductions). A
 * third column times the AVX2 backend at the full default pool width,
 * showing how vectorization composes with the thread runtime. The
 * final BENCH_JSON line is machine-readable so the perf trajectory of
 * the backend can be tracked run over run.
 *
 * Acceptance floors on AVX2 hardware: >= 2x single-thread MatMul and
 * >= 4x binary-VSA similarity versus the scalar backend. On machines
 * without AVX2 the bench degrades to a scalar-vs-scalar sanity run.
 *
 * Not a paper figure: this tracks the reproduction's own runtime,
 * motivated by the CPU-bottleneck observations of Sec. IV.
 */

#include <cmath>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common.hh"
#include "core/profiler.hh"
#include "tensor/ops.hh"
#include "util/format.hh"
#include "util/rng.hh"
#include "util/simd.hh"
#include "util/table.hh"
#include "util/threadpool.hh"
#include "util/timer.hh"
#include "vsa/binary.hh"
#include "vsa/codebook.hh"
#include "vsa/ops.hh"

namespace
{

using namespace nsbench;
using tensor::Tensor;
namespace simd = nsbench::util::simd;

constexpr int kRepeats = 5;

struct Kernel
{
    std::string name;
    std::function<double()> run;
};

double
timeKernel(const Kernel &kernel, double *checksum)
{
    double best = 0.0;
    for (int r = 0; r < kRepeats; r++) {
        util::WallTimer timer;
        double sum = kernel.run();
        double elapsed = timer.elapsed();
        if (r == 0 || elapsed < best)
            best = elapsed;
        *checksum = sum;
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::printHeader("SIMD backend scaling",
                       "runtime extra (Sec. IV CPU bottlenecks)");

    bool has_avx2 = simd::avx2Supported();
    std::cout << "vector backend: "
              << (has_avx2 ? "avx2 (runtime-dispatched)"
                           : "scalar only (no AVX2 on this host)")
              << "\n\n";

    util::Rng rng(7);

    Tensor mm_a = Tensor::randn({512, 512}, rng);
    Tensor mm_b = Tensor::randn({512, 512}, rng);
    Tensor lin_x = Tensor::randn({256, 1024}, rng);
    Tensor lin_w = Tensor::randn({512, 1024}, rng);
    Tensor lin_bias = Tensor::randn({512}, rng);
    Tensor ew_a = Tensor::randn({1 << 22}, rng);
    Tensor ew_b = Tensor::randn({1 << 22}, rng);
    vsa::Codebook book(512, 8192, rng);
    Tensor query = vsa::randomHypervector(8192, rng);
    Tensor cos_a = Tensor::randn({1 << 22}, rng);
    Tensor cos_b = Tensor::randn({1 << 22}, rng);
    vsa::BinaryCodebook bin_book(1024, 16384, rng);
    vsa::BinaryVector bin_query =
        vsa::BinaryVector::random(16384, rng);

    std::vector<Kernel> kernels = {
        {"matmul_512",
         [&] { return tensor::sumAll(matmul(mm_a, mm_b)); }},
        {"linear_256x1024",
         [&] {
             return tensor::sumAll(linear(lin_x, lin_w, lin_bias));
         }},
        {"elementwise_4M",
         [&] {
             return tensor::sumAll(
                 tensor::mul(tensor::add(ew_a, ew_b), ew_a));
         }},
        {"sum_4M", [&] { return tensor::sumAll(ew_a); }},
        {"cosine_4M",
         [&] {
             return static_cast<double>(
                 vsa::cosineSimilarity(cos_a, cos_b));
         }},
        {"codebook_cleanup",
         [&] {
             auto r = book.cleanup(query);
             return static_cast<double>(r.index) + r.similarity;
         }},
        {"binary_cleanup_16k",
         [&] {
             auto r = bin_book.cleanup(bin_query);
             return static_cast<double>(r.index) + r.similarity;
         }},
    };

    core::globalProfiler().setEnabled(false);

    util::Table table({"kernel", "scalar", "avx2", "speedup",
                       "avx2+threads", "match"});
    std::ostringstream json;
    json << "{\"bench\":\"scaling_simd\",\"avx2\":"
         << (has_avx2 ? "true" : "false") << ",\"hw_threads\":"
         << util::ThreadPool::defaultThreads() << ",\"kernels\":[";

    bool all_match = true;
    for (size_t k = 0; k < kernels.size(); k++) {
        const Kernel &kernel = kernels[k];

        util::ThreadPool::setGlobalThreads(1);
        simd::setBackend(simd::Backend::Scalar);
        double scalar_checksum = 0.0;
        double scalar_s = timeKernel(kernel, &scalar_checksum);

        simd::setBackend(has_avx2 ? simd::Backend::Avx2
                                  : simd::Backend::Scalar);
        double simd_checksum = 0.0;
        double simd_s = timeKernel(kernel, &simd_checksum);

        util::ThreadPool::setGlobalThreads(0); // default width
        double wide_checksum = 0.0;
        double wide_s = timeKernel(kernel, &wide_checksum);

        double denom = std::max(1.0, std::abs(scalar_checksum));
        bool match =
            std::abs(simd_checksum - scalar_checksum) / denom <=
                1e-5 &&
            std::abs(wide_checksum - scalar_checksum) / denom <= 1e-5;
        all_match = all_match && match;

        double speedup = simd_s > 0.0 ? scalar_s / simd_s : 0.0;
        table.addRow({kernel.name, util::humanSeconds(scalar_s),
                      util::humanSeconds(simd_s),
                      util::fixedStr(speedup, 2) + "x",
                      util::humanSeconds(wide_s),
                      match ? "yes" : "NO"});

        json << (k ? "," : "") << "{\"name\":\"" << kernel.name
             << "\",\"scalar_seconds\":" << scalar_s
             << ",\"avx2_seconds\":" << simd_s
             << ",\"avx2_threads_seconds\":" << wide_s
             << ",\"speedup\":" << speedup
             << ",\"match\":" << (match ? "true" : "false") << "}";
    }
    json << "]}";

    simd::resetBackend();
    util::ThreadPool::setGlobalThreads(0);
    core::globalProfiler().setEnabled(true);

    table.print(std::cout);
    std::cout << "\nFloors on AVX2 hardware: matmul_512 >= 2x and "
                 "binary_cleanup_16k >= 4x over the scalar backend "
                 "single-threaded (the binary path additionally gains "
                 "hardware POPCNT, which the baseline-ISA scalar "
                 "build lacks).\n"
              << (all_match ? ""
                            : "WARNING: backend mismatch detected!\n")
              << "\nBENCH_JSON " << json.str() << "\n";
    bench::writeBenchJson(argc, argv, json.str());
    return all_match ? 0 : 1;
}
