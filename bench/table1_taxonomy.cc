/**
 * @file
 * Tab. I/II: the neuro-symbolic algorithm census and operation
 * exemplars, plus which entries this suite implements.
 */

#include <iostream>

#include "core/paradigms.hh"
#include "util/table.hh"

int
main()
{
    using namespace nsbench;

    std::cout << "\n=== Neuro-symbolic algorithm taxonomy ===\n"
                 "reproduces: Tab. I (Kautz categories) and Tab. II\n\n";

    util::Table census({"algorithm", "paradigm",
                        "underlying operations", "vector",
                        "implemented"});
    for (const auto &entry : core::algorithmCensus()) {
        census.addRow({std::string(entry.name),
                       std::string(core::paradigmName(entry.paradigm)),
                       std::string(entry.operations),
                       entry.vectorFormat ? "vector" : "non-vector",
                       entry.implementedHere ? "yes" : "-"});
    }
    census.print(std::cout);

    std::cout << "\nOperation exemplars (Tab. II):\n";
    util::Table examples({"operation", "example"});
    for (const auto &ex : core::operationExamples()) {
        examples.addRow({std::string(ex.operation),
                         std::string(ex.example)});
    }
    examples.print(std::cout);
    return 0;
}
