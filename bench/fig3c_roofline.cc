/**
 * @file
 * Fig. 3c: roofline placement of the neural and symbolic halves on
 * the RTX 2080 Ti model.
 *
 * For every workload, the aggregated operational intensity of each
 * phase (and each category slice within it) is placed against the
 * device roofline. The paper's observation: neural components sit in
 * the compute-bound region, symbolic components in the memory-bound
 * region.
 */

#include <cmath>
#include <iostream>

#include "common.hh"
#include "sim/device.hh"
#include "sim/roofline.hh"
#include "util/format.hh"
#include "util/table.hh"

int
main()
{
    using namespace nsbench;

    const auto &gpu = sim::rtx2080ti();
    bench::printHeader("Roofline analysis on the RTX 2080 Ti model",
                       "Fig. 3c");
    std::cout << "device: peak "
              << util::fixedStr(gpu.peakGflops / 1000.0, 2)
              << " TFLOP/s, bandwidth "
              << util::fixedStr(gpu.memBandwidthGBs, 0)
              << " GB/s, ridge point "
              << util::fixedStr(gpu.ridgeIntensity(), 1)
              << " FLOP/byte\n\n";

    util::Table table({"point", "intensity(FLOP/B)",
                       "attainable(GF/s)", "bound"});

    int symbolic_memory_bound = 0, symbolic_points = 0;
    double neural_log_intensity = 0.0, symbolic_log_intensity = 0.0;
    int neural_points = 0;
    for (const auto &name : bench::paperOrder()) {
        auto run = bench::profileWorkload(name);
        auto points =
            sim::rooflineFromProfile(gpu, run.profile, name);
        for (const auto &pt : points) {
            // Top-level phase aggregates only, to keep the table the
            // size of the paper's plot.
            if (pt.label.find("neural/") != std::string::npos ||
                pt.label.find("symbolic/") != std::string::npos) {
                continue;
            }
            table.addRow({pt.label, util::fixedStr(pt.intensity, 3),
                          util::fixedStr(pt.attainableGflops, 1),
                          pt.memoryBound ? "memory" : "compute"});
            bool is_symbolic =
                pt.label.find("/symbolic") != std::string::npos;
            if (is_symbolic) {
                symbolic_points++;
                if (pt.memoryBound)
                    symbolic_memory_bound++;
                symbolic_log_intensity +=
                    std::log(std::max(pt.intensity, 1e-6));
            } else {
                neural_points++;
                neural_log_intensity +=
                    std::log(std::max(pt.intensity, 1e-6));
            }
        }
    }
    table.print(std::cout);

    double gap = std::exp(neural_log_intensity / neural_points -
                          symbolic_log_intensity / symbolic_points);
    std::cout << "\nTakeaway 4 check: " << symbolic_memory_bound
              << "/" << symbolic_points
              << " symbolic phase aggregates are memory-bound, and "
                 "neural aggregates sit "
              << util::fixedStr(gap, 1)
              << "x higher in operational intensity (geometric "
                 "mean). Our small perception nets keep absolute "
                 "neural intensity below the paper's ResNet-scale "
                 "frontends; the neural-vs-symbolic separation is "
                 "the reproduced shape.\n";
    return 0;
}
