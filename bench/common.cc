#include "common.hh"

#include <fstream>
#include <iostream>
#include <sstream>

#include "cache/config.hh"
#include "tensor/alloc.hh"
#include "util/logging.hh"
#include "util/simd.hh"
#include "util/threadpool.hh"
#include "util/timer.hh"
#include "workloads/register.hh"

#ifndef NSBENCH_GIT_SHA
#define NSBENCH_GIT_SHA "unknown"
#endif
#ifndef NSBENCH_BUILD_TYPE
#define NSBENCH_BUILD_TYPE "unknown"
#endif

namespace nsbench::bench
{

ProfiledRun
profileWorkload(const std::string &name, uint64_t seed)
{
    workloads::registerAllWorkloads();
    auto workload = core::WorkloadRegistry::global().create(name);
    return profileWorkload(*workload, seed);
}

ProfiledRun
profileWorkload(core::Workload &workload, uint64_t seed)
{
    workload.setUp(seed);

    auto &prof = core::globalProfiler();
    prof.reset();
    util::WallTimer timer;
    double score = workload.run();
    double wall = timer.elapsed();

    ProfiledRun run;
    run.name = workload.name();
    run.score = score;
    run.wallSeconds = wall;
    run.storageBytes = workload.storageBytes();
    run.profile = prof;
    prof.reset();
    return run;
}

const std::vector<std::string> &
paperOrder()
{
    static const std::vector<std::string> order = {
        "LNN", "LTN", "NVSA", "NLM", "VSAIT", "ZeroC", "PrAE"};
    return order;
}

void
printHeader(const std::string &title, const std::string &paper_ref)
{
    std::cout << "\n=== " << title << " ===\n"
              << "reproduces: " << paper_ref << "\n\n";
}

std::string
runMetadataJson()
{
    std::ostringstream meta;
    meta << "{\"git_sha\":\"" << NSBENCH_GIT_SHA
         << "\",\"build_type\":\"" << NSBENCH_BUILD_TYPE
         << "\",\"threads\":" << util::ThreadPool::globalThreads()
         << ",\"simd\":\"" << util::simd::activeBackendName()
         << "\",\"arena\":\"" << tensor::activeAllocatorName()
         << "\",\"cache\":" << (cache::enabled() ? "true" : "false")
         << "}";
    return meta.str();
}

void
writeBenchJson(int argc, char **argv, const std::string &json)
{
    std::string path;
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            path = argv[i + 1];
            break;
        }
        if (arg.rfind("--json=", 0) == 0) {
            path = arg.substr(7);
            break;
        }
    }
    if (path.empty())
        return;
    // Inject provenance as the payload's first field; a non-object
    // payload (none today) is written untouched.
    std::string payload = json;
    if (payload.size() >= 2 && payload.front() == '{') {
        std::string rest = payload.substr(1);
        payload = "{\"meta\":" + runMetadataJson() +
                  (rest == "}" ? "" : ",") + rest;
    }
    std::ofstream out(path);
    util::panicIf(!out, "writeBenchJson: cannot open " + path);
    out << payload << "\n";
    util::panicIf(!out.good(),
                  "writeBenchJson: write failed for " + path);
}

} // namespace nsbench::bench
