/**
 * @file
 * Cross-episode stage-pipeline scaling — Recommendation 5, executed.
 *
 * rec5_scheduling.cc *simulates* the win from overlapping episode
 * i+1's neural stage with episode i's symbolic stage; this bench
 * runs the overlap for real through exec::runPipelined and puts the
 * measured speedup next to the sim::schedule prediction. Each staged
 * workload executes the same episode train twice — a serial
 * reseed+run loop, then the stage pipeline — and the bench checks
 * the pipelined scores byte-match the serial ones before it trusts
 * any timing.
 *
 * Exit-code gate: every workload must be byte-identical, and at
 * least two must reach >= 1.3x end-to-end speedup. LTN is sized up
 * (people=320) so its quadratic axiom stage carries weight
 * comparable to its linear grounding stage; the other configs are
 * small enough to keep the bench in seconds. On a single-core host
 * the stages cannot overlap, so the speedup part of the gate is
 * skipped (identity still gates).
 */

#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hh"
#include "exec/pipeline.hh"
#include "util/format.hh"
#include "util/table.hh"
#include "util/timer.hh"
#include "workloads/lnn.hh"
#include "workloads/ltn.hh"
#include "workloads/nlm.hh"
#include "workloads/nvsa.hh"
#include "workloads/prae.hh"

namespace
{

using namespace nsbench;

constexpr int kEpisodes = 8;
constexpr double kGateSpeedup = 1.3;
constexpr int kGateWorkloads = 2;

/** True when two score vectors match bit-for-bit. */
bool
byteIdentical(const std::vector<double> &a,
              const std::vector<double> &b)
{
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.data(), b.data(),
                        a.size() * sizeof(double)) == 0);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::printHeader(
        "Cross-episode stage-pipeline scaling",
        "runtime extra (Sec. V Recommendation 5, executed)");

    // Balanced-stage configs, documented above. NVSA runs the
    // serve-sized model: its full-size symbolic stage dwarfs
    // perception by ~50x and would push the bench into minutes.
    std::vector<std::unique_ptr<core::Workload>> cases;
    {
        workloads::NvsaConfig nvsa;
        nvsa.hvDim = 256;
        nvsa.episodes = 1;
        cases.push_back(
            std::make_unique<workloads::NvsaWorkload>(nvsa));
        cases.push_back(std::make_unique<workloads::PraeWorkload>(
            workloads::PraeConfig{}));
        cases.push_back(std::make_unique<workloads::LnnWorkload>(
            workloads::LnnConfig{}));
        workloads::LtnConfig ltn;
        ltn.people = 320;
        cases.push_back(
            std::make_unique<workloads::LtnWorkload>(ltn));
        cases.push_back(std::make_unique<workloads::NlmWorkload>(
            workloads::NlmConfig{}));
    }

    std::vector<uint64_t> seeds;
    for (int i = 0; i < kEpisodes; i++)
        seeds.push_back(exec::episodeSeed(42, i));

    util::Table table({"workload", "stages", "serial", "pipelined",
                       "speedup", "predicted", "overlap",
                       "identical"});
    std::ostringstream json;
    json << "{\"bench\":\"scaling_pipeline\",\"episodes\":"
         << kEpisodes << ",\"gate_speedup\":" << kGateSpeedup
         << ",\"workloads\":[";

    bool all_identical = true;
    int gate_hits = 0;
    for (size_t c = 0; c < cases.size(); c++) {
        core::Workload &workload = *cases[c];
        workload.setUp(42);

        util::WallTimer serial_timer;
        std::vector<double> serial =
            exec::runSerialEpisodes(workload, seeds);
        double serial_wall = serial_timer.elapsed();

        exec::PipelineOptions options;
        options.collectProfiles = false;
        exec::PipelineResult piped =
            exec::runPipelined(workload, seeds, options);

        bool identical = byteIdentical(serial, piped.scores);
        all_identical = all_identical && identical;
        double speedup = piped.wallSeconds > 0.0
                             ? serial_wall / piped.wallSeconds
                             : 1.0;
        if (speedup >= kGateSpeedup)
            gate_hits++;
        std::vector<double> stage_seconds;
        for (const exec::StageReport &stage : piped.stages)
            stage_seconds.push_back(stage.busySeconds);
        double predicted =
            exec::predictedSpeedup(stage_seconds, kEpisodes);

        table.addRow({workload.name(),
                      std::to_string(workload.stageCount()),
                      util::humanSeconds(serial_wall),
                      util::humanSeconds(piped.wallSeconds),
                      util::fixedStr(speedup, 2) + "x",
                      util::fixedStr(predicted, 2) + "x",
                      util::fixedStr(piped.overlapSpeedup(), 2) + "x",
                      identical ? "yes" : "NO"});
        json << (c ? "," : "") << "{\"name\":\"" << workload.name()
             << "\",\"stages\":" << workload.stageCount()
             << ",\"serial_s\":" << serial_wall
             << ",\"pipelined_s\":" << piped.wallSeconds
             << ",\"speedup\":" << speedup
             << ",\"predicted\":" << predicted
             << ",\"overlap\":" << piped.overlapSpeedup()
             << ",\"identical\":" << (identical ? "true" : "false")
             << "}";
    }

    bool single_core = std::thread::hardware_concurrency() < 2;
    bool gate_ok =
        all_identical && (single_core || gate_hits >= kGateWorkloads);
    json << "],\"gate_hits\":" << gate_hits << ",\"all_identical\":"
         << (all_identical ? "true" : "false")
         << ",\"gate_ok\":" << (gate_ok ? "true" : "false") << "}";

    table.print(std::cout);
    std::cout << "\nGate: scores byte-identical on every workload"
              << (single_core
                      ? " (single-core host: speedup gate skipped)"
                      : ", and >= " +
                            std::to_string(kGateWorkloads) +
                            " workloads at >= " +
                            util::fixedStr(kGateSpeedup, 1) +
                            "x — " + std::to_string(gate_hits) +
                            " qualified")
              << ".\n"
              << (all_identical
                      ? ""
                      : "ERROR: pipelined scores diverged from the "
                        "serial loop!\n")
              << "\nBENCH_JSON " << json.str() << "\n";
    bench::writeBenchJson(argc, argv, json.str());
    return gate_ok ? 0 : 1;
}
