/**
 * @file
 * Recommendation 5: adaptive scheduling with parallel neural/symbolic
 * processing.
 *
 * Each workload's measured stage graph is scheduled onto a machine
 * with dedicated neural and symbolic units, pipelining a batch of
 * inference episodes. The bench reports the throughput speedup over
 * sequential execution and the per-unit utilization — quantifying how
 * much of the Fig. 4 underutilization scheduling can recover, and
 * where extra symbolic units pay off.
 */

#include <iostream>

#include "common.hh"
#include "core/opgraph.hh"
#include "sim/schedule.hh"
#include "util/format.hh"
#include "util/table.hh"
#include "workloads/register.hh"

int
main()
{
    using namespace nsbench;

    bench::printHeader(
        "Pipelined neural/symbolic scheduling (16 episodes)",
        "Recommendation 5 / Takeaway 5");

    util::Table table({"workload", "units(N+S)", "speedup",
                       "neural-util", "symbolic-util"});

    workloads::registerAllWorkloads();
    for (const auto &name : bench::paperOrder()) {
        auto workload = core::WorkloadRegistry::global().create(name);
        auto run = bench::profileWorkload(*workload);

        core::OpGraph graph = workload->opGraph();
        for (core::NodeId id = 0; id < graph.size(); id++) {
            graph.node(id).seconds =
                run.profile.regionTotals(graph.node(id).name).seconds;
        }

        for (const auto &[n_units, s_units] :
             {std::pair{1, 1}, std::pair{1, 2}}) {
            auto sched = sim::pipelineSchedule(
                graph, {n_units, s_units}, 16);
            table.addRow(
                {name,
                 std::to_string(n_units) + "+" +
                     std::to_string(s_units),
                 util::fixedStr(sched.speedup(), 2) + "x",
                 util::percentStr(sched.utilization(
                     core::Phase::Neural, n_units)),
                 util::percentStr(sched.utilization(
                     core::Phase::Symbolic, s_units))});
        }
    }
    table.print(std::cout);

    std::cout
        << "\nPipelining episodes across dedicated units recovers "
           "the idle time of the sequential Fig. 4 pipelines; the "
           "bottleneck unit (symbolic for the VSA/abduction models) "
           "saturates, so a second symbolic unit is where the next "
           "speedup comes from — the heterogeneous-architecture "
           "argument of Recommendation 6.\n";
    return 0;
}
