/**
 * @file
 * Tab. IV: hardware-inefficiency counters for representative neural
 * and symbolic kernels.
 *
 * The four NVSA-representative kernels replay their coalesced access
 * traces through the simulated two-level cache hierarchy; the derived
 * utilizations are printed next to the Nsight Compute numbers the
 * paper reports. The reproduced shape: neural kernels keep the ALUs
 * busy with modest DRAM pressure, symbolic kernels idle the ALUs and
 * saturate DRAM bandwidth.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "sim/kernels.hh"
#include "util/format.hh"
#include "util/table.hh"

namespace
{

using namespace nsbench;

sim::KernelCounters
runKernel(const std::string &name)
{
    auto machine = sim::MachineModel::gpuLike();
    if (name == "sgemm_nn")
        return sim::runSgemmKernel(machine, 256, 256, 256, 32);
    if (name == "relu_nn")
        return sim::runReluKernel(machine, 512 * 1024);
    if (name == "vectorized_elem")
        return sim::runVsaBundleKernel(machine, 16, 1 << 20);
    return sim::runGatherKernel(machine, 20000, 100000, 32);
}

/** Times the cache-simulation itself under google-benchmark. */
void
BM_KernelTrace(benchmark::State &state,
               const std::string &kernel_name)
{
    for (auto _ : state) {
        auto counters = runKernel(kernel_name);
        benchmark::DoNotOptimize(counters.cycles);
    }
}

/** Paper Tab. IV reference values per kernel. */
struct PaperRow
{
    const char *kernel;
    double compute, alu, l1thr, l2thr, l1hit, l2hit, dram;
};

constexpr PaperRow paperRows[] = {
    {"sgemm_nn", 95.1, 90.1, 79.7, 19.2, 1.6, 86.8, 14.9},
    {"relu_nn", 92.9, 48.3, 82.6, 17.5, 51.6, 65.5, 24.2},
    {"vectorized_elem", 3.0, 5.9, 28.4, 29.8, 29.5, 48.6, 90.9},
    {"elementwise", 2.3, 4.5, 10.8, 22.8, 33.3, 34.3, 78.4},
};

} // namespace

int
main(int argc, char **argv)
{
    std::cout << "\n=== Hardware-inefficiency analysis (simulated "
                 "cache hierarchy) ===\nreproduces: Tab. IV\n\n";

    util::Table table({"kernel", "who", "compute-thr%", "ALU%",
                       "L1-thr%", "L2-thr%", "L1-hit%", "L2-hit%",
                       "DRAM-BW%"});
    for (const auto &paper : paperRows) {
        auto k = runKernel(paper.kernel);
        table.addRow({k.name, "ours",
                      util::fixedStr(k.computeThroughputPct, 1),
                      util::fixedStr(k.aluUtilPct, 1),
                      util::fixedStr(k.l1ThroughputPct, 1),
                      util::fixedStr(k.l2ThroughputPct, 1),
                      util::fixedStr(k.l1HitRatePct, 1),
                      util::fixedStr(k.l2HitRatePct, 1),
                      util::fixedStr(k.dramBwUtilPct, 1)});
        table.addRow({paper.kernel, "paper",
                      util::fixedStr(paper.compute, 1),
                      util::fixedStr(paper.alu, 1),
                      util::fixedStr(paper.l1thr, 1),
                      util::fixedStr(paper.l2thr, 1),
                      util::fixedStr(paper.l1hit, 1),
                      util::fixedStr(paper.l2hit, 1),
                      util::fixedStr(paper.dram, 1)});
    }
    table.print(std::cout);

    std::cout
        << "\nTakeaway 6 check: the symbolic kernels (vectorized_elem,"
           " elementwise) show single-digit ALU utilization with "
           "DRAM bandwidth saturated; the neural kernels invert "
           "both. Absolute hit rates differ from Nsight's (we model "
           "a classic cache, not Turing's sector/shared-memory "
           "hierarchy); the contrast is the reproduced result.\n\n";

    benchmark::RegisterBenchmark("BM_trace/sgemm_nn", BM_KernelTrace,
                                 std::string("sgemm_nn"));
    benchmark::RegisterBenchmark("BM_trace/vectorized_elem",
                                 BM_KernelTrace,
                                 std::string("vectorized_elem"));
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
