/**
 * @file
 * Fig. 3b + the storage part of Takeaway 4: memory behaviour of all
 * seven workloads.
 *
 * Reports the peak live tensor footprint and allocation volume per
 * phase during one profiled run, plus the persistent model storage
 * (weights + codebooks). The paper's observations: symbolic phases of
 * the abduction models need large intermediate caching, and neural
 * weights plus VSA codebooks dominate persistent storage (>90% for
 * NVSA).
 *
 * The alloc/recycled columns expose allocation churn: total storage
 * acquisitions and how many the arena allocator served from its free
 * lists (zero in heap mode). Peak/alloc byte figures are logical and
 * identical whichever allocator is active.
 */

#include <iostream>

#include "common.hh"
#include "core/report.hh"
#include "util/format.hh"
#include "util/table.hh"
#include "workloads/nvsa.hh"

int
main()
{
    using namespace nsbench;

    bench::printHeader("Memory usage during computation", "Fig. 3b");

    util::Table table({"workload", "peak-live", "neural-peak",
                       "symbolic-peak", "neural-alloc",
                       "symbolic-alloc", "allocs", "recycled",
                       "model-storage"});

    for (const auto &name : bench::paperOrder()) {
        auto run = bench::profileWorkload(name);
        const auto &p = run.profile;
        core::MemChurn churn = p.memChurn();
        table.addRow(
            {name, util::humanBytes(p.peakBytes()),
             util::humanBytes(p.peakBytesIn(core::Phase::Neural)),
             util::humanBytes(p.peakBytesIn(core::Phase::Symbolic)),
             util::humanBytes(
                 p.allocatedBytesIn(core::Phase::Neural)),
             util::humanBytes(
                 p.allocatedBytesIn(core::Phase::Symbolic)),
             std::to_string(churn.allocs),
             std::to_string(churn.recycledAllocs),
             util::humanBytes(run.storageBytes)});
    }
    table.print(std::cout);

    // NVSA storage decomposition: the codebook share of Takeaway 4.
    workloads::NvsaWorkload nvsa;
    nvsa.setUp(42);
    std::cout << "\nNVSA persistent storage: "
              << util::humanBytes(nvsa.storageBytes())
              << " total; the attribute + combination codebooks are "
                 "the dominant share (paper: network weights + "
                 "codebook are >90% of NVSA's footprint).\n";
    return 0;
}
