/**
 * @file
 * Network serving scaling: loopback overhead and sharded routing.
 *
 * Two questions about the net front end (docs/DESIGN.md §7h):
 *
 *  1. What does the wire cost? The same server is driven by the same
 *     closed-loop load twice — in-process through ServerTarget, and
 *     over a loopback TCP connection through net::Client — and the
 *     throughput ratio is the protocol + socket overhead. Reported,
 *     not gated: loopback RTT varies across machines.
 *
 *  2. Does sharding scale? A consistent-hash router spreads a
 *     seed-sensitive workload over 1, 2 and 4 backends whose result
 *     caches are individually too small for the whole seed universe.
 *     Affinity means N backends hold N cache shards: one backend
 *     thrashes its LRU while four serve mostly hits. The acceptance
 *     bar is >= 1.5x throughput going from 1 to 4 backends — the
 *     gain mechanism is aggregate cache capacity, so it holds even
 *     on a single-core host where CPU parallelism cannot.
 *
 * Not a paper figure: this tracks the reproduction's own serving
 * runtime, motivated by the deployment recommendations of Sec. V.
 */

#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common.hh"
#include "net/client.hh"
#include "net/router.hh"
#include "net/tcp_server.hh"
#include "serve/loadgen.hh"
#include "serve/presets.hh"
#include "serve/server.hh"
#include "util/format.hh"
#include "util/table.hh"
#include "workloads/register.hh"

namespace
{

using namespace nsbench;

/** Distinct episode seeds in play; must overflow one backend's
 *  result cache but fit comfortably in four (see cacheBytes). */
constexpr uint64_t kSeedUniverse = 64;

serve::ServerOptions
backendOptions(const std::string &workload)
{
    serve::ServerOptions options;
    options.workloads = {workload};
    options.workers = 1;
    options.maxBatch = 1;
    options.maxWaitUs = 500;
    options.factory = serve::serveFactory;
    options.resultCache = true;
    // ~24 entries at the cache's per-entry cost: a third of the seed
    // universe. One backend evicts constantly; a four-way shard of
    // the universe (~16 keys each) fits with room to spare.
    options.cacheBytes = 2048;
    options.cacheShards = 1;
    return options;
}

serve::LoadgenOptions
loadOptions(double duration_seconds)
{
    serve::LoadgenOptions options;
    options.openLoop = false;
    options.clients = 8;
    options.durationSeconds = duration_seconds;
    options.seedUniverse = kSeedUniverse;
    options.zipfExponent = 0.0; // Uniform: worst case for one LRU.
    return options;
}

/** One loopback backend: server plus TCP front end. */
struct Backend
{
    std::unique_ptr<serve::Server> server;
    std::unique_ptr<net::TcpServer> tcp;
};

std::unique_ptr<Backend>
makeBackend(const std::string &workload)
{
    auto backend = std::make_unique<Backend>();
    backend->server =
        std::make_unique<serve::Server>(backendOptions(workload));
    backend->tcp =
        std::make_unique<net::TcpServer>(*backend->server);
    return backend;
}

/** One measured operating point of the sharded sweep. */
struct Point
{
    int backends = 0;
    double throughput = 0.0;
    double hitRate = 0.0;
    uint64_t completed = 0;
    uint64_t evictions = 0;
};

Point
measureSharded(const std::string &workload, int backend_count)
{
    std::vector<std::unique_ptr<Backend>> fleet;
    net::RouterOptions router_options;
    for (int i = 0; i < backend_count; i++) {
        fleet.push_back(makeBackend(workload));
        router_options.backends.push_back(
            "127.0.0.1:" +
            std::to_string(fleet.back()->tcp->port()));
    }
    net::Router router(router_options);

    net::ClientOptions client_options;
    client_options.port = router.port();
    net::Client client(client_options);
    net::RemoteTarget target(client, {workload});

    // Warm every key once so the sweep measures steady state, not
    // first-touch misses (each backend fills with its shard).
    for (uint64_t seed = 0; seed < kSeedUniverse; seed++)
        target.call(workload, seed, serve::noDeadline());

    serve::LoadgenReport report =
        serve::runLoadgen(target, loadOptions(1.5));

    Point point;
    point.backends = backend_count;
    point.throughput = report.throughput();
    point.completed = report.completed;
    uint64_t hits = 0, misses = 0;
    for (const auto &backend : fleet) {
        cache::ResultCacheStats stats =
            backend->server->resultCache()->stats();
        hits += stats.hits;
        misses += stats.misses;
        point.evictions += stats.evictions;
    }
    point.hitRate = hits + misses
                        ? static_cast<double>(hits) /
                              static_cast<double>(hits + misses)
                        : 0.0;

    client.close();
    router.shutdown();
    for (auto &backend : fleet)
        backend->tcp->shutdown();
    return point;
}

} // namespace

int
main(int argc, char **argv)
{
    workloads::registerAllWorkloads();
    bench::printHeader("Network serving scaling",
                       "runtime extra (Sec. V deployment)");

    // --- 1. Loopback overhead ------------------------------------
    // LNN is the cheapest serve preset, which maximises the relative
    // visibility of per-request wire cost.
    const std::string overhead_workload = "LNN";
    serve::LoadgenOptions overhead_load = loadOptions(1.0);

    double local_rps, remote_rps;
    {
        serve::Server server(backendOptions(overhead_workload));
        local_rps =
            serve::runLoadgen(server, overhead_load).throughput();
        server.shutdown();
    }
    {
        serve::Server server(backendOptions(overhead_workload));
        net::TcpServer tcp(server);
        net::ClientOptions client_options;
        client_options.port = tcp.port();
        net::Client client(client_options);
        net::RemoteTarget target(client, {overhead_workload});
        remote_rps =
            serve::runLoadgen(target, overhead_load).throughput();
        client.close();
        tcp.shutdown();
        server.shutdown();
    }
    double wire_ratio =
        local_rps > 0.0 ? remote_rps / local_rps : 0.0;

    util::Table overhead({"transport", "req/s", "vs in-process"});
    overhead.addRow({"in-process", util::fixedStr(local_rps, 1),
                     "1.00x"});
    overhead.addRow({"loopback TCP", util::fixedStr(remote_rps, 1),
                     util::fixedStr(wire_ratio, 2) + "x"});
    overhead.print(std::cout);

    // --- 2. Sharded routing sweep ---------------------------------
    const std::string workload = "NVSA";
    util::Table table({"backends", "req/s", "gain", "cache hit",
                       "evictions", "done"});
    std::vector<Point> points;
    double base = 0.0;
    for (int backends : {1, 2, 4}) {
        Point point = measureSharded(workload, backends);
        if (backends == 1)
            base = point.throughput;
        double gain = base > 0.0 ? point.throughput / base : 0.0;
        table.addRow({std::to_string(point.backends),
                      util::fixedStr(point.throughput, 1),
                      util::fixedStr(gain, 2) + "x",
                      util::fixedStr(point.hitRate * 100.0, 1) + "%",
                      std::to_string(point.evictions),
                      std::to_string(point.completed)});
        points.push_back(point);
    }
    std::cout << "\n";
    table.print(std::cout);

    double gain_1_to_4 =
        base > 0.0 ? points.back().throughput / base : 0.0;
    bool pass = gain_1_to_4 >= 1.5;
    std::cout
        << "\nEach backend's result cache holds ~1/3 of the seed "
           "universe; consistent-hash affinity makes N backends an "
           "N-way cache shard. Acceptance bar: >= 1.5x throughput "
           "from 1 to 4 backends — measured "
        << util::fixedStr(gain_1_to_4, 2) << "x ("
        << (pass ? "pass" : "FAIL") << ").\n";

    std::ostringstream json;
    json << "{\"bench\":\"scaling_net\",\"overhead\":{"
         << "\"in_process_rps\":" << local_rps
         << ",\"loopback_rps\":" << remote_rps
         << ",\"ratio\":" << wire_ratio << "},\"scaling\":[";
    for (size_t i = 0; i < points.size(); i++)
        json << (i ? "," : "") << "{\"backends\":"
             << points[i].backends << ",\"throughput\":"
             << points[i].throughput << ",\"hit_rate\":"
             << points[i].hitRate << ",\"evictions\":"
             << points[i].evictions << "}";
    json << "],\"gain_1_to_4\":" << gain_1_to_4
         << ",\"pass\":" << (pass ? "true" : "false") << "}";
    std::cout << "\nBENCH_JSON " << json.str() << "\n";
    bench::writeBenchJson(argc, argv, json.str());
    return pass ? 0 : 1;
}
