# Empty compiler generated dependencies file for raven_solver.
# This may be replaced when dependencies are built.
