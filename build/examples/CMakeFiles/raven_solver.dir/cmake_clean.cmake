file(REMOVE_RECURSE
  "CMakeFiles/raven_solver.dir/raven_solver.cpp.o"
  "CMakeFiles/raven_solver.dir/raven_solver.cpp.o.d"
  "raven_solver"
  "raven_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raven_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
