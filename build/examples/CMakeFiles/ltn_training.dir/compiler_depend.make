# Empty compiler generated dependencies file for ltn_training.
# This may be replaced when dependencies are built.
