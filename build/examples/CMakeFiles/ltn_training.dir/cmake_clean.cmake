file(REMOVE_RECURSE
  "CMakeFiles/ltn_training.dir/ltn_training.cpp.o"
  "CMakeFiles/ltn_training.dir/ltn_training.cpp.o.d"
  "ltn_training"
  "ltn_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltn_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
