# Empty compiler generated dependencies file for image_translation.
# This may be replaced when dependencies are built.
