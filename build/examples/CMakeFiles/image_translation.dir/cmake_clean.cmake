file(REMOVE_RECURSE
  "CMakeFiles/image_translation.dir/image_translation.cpp.o"
  "CMakeFiles/image_translation.dir/image_translation.cpp.o.d"
  "image_translation"
  "image_translation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_translation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
