file(REMOVE_RECURSE
  "CMakeFiles/theorem_prover.dir/theorem_prover.cpp.o"
  "CMakeFiles/theorem_prover.dir/theorem_prover.cpp.o.d"
  "theorem_prover"
  "theorem_prover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem_prover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
