# Empty dependencies file for theorem_prover.
# This may be replaced when dependencies are built.
