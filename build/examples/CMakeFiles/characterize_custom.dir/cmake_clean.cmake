file(REMOVE_RECURSE
  "CMakeFiles/characterize_custom.dir/characterize_custom.cpp.o"
  "CMakeFiles/characterize_custom.dir/characterize_custom.cpp.o.d"
  "characterize_custom"
  "characterize_custom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/characterize_custom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
