# Empty dependencies file for fig2a_latency_split.
# This may be replaced when dependencies are built.
