file(REMOVE_RECURSE
  "../bench/fig2a_latency_split"
  "../bench/fig2a_latency_split.pdb"
  "CMakeFiles/fig2a_latency_split.dir/fig2a_latency_split.cc.o"
  "CMakeFiles/fig2a_latency_split.dir/fig2a_latency_split.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_latency_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
