file(REMOVE_RECURSE
  "../bench/fig3c_roofline"
  "../bench/fig3c_roofline.pdb"
  "CMakeFiles/fig3c_roofline.dir/fig3c_roofline.cc.o"
  "CMakeFiles/fig3c_roofline.dir/fig3c_roofline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3c_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
