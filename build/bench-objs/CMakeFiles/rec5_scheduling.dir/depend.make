# Empty dependencies file for rec5_scheduling.
# This may be replaced when dependencies are built.
