file(REMOVE_RECURSE
  "../bench/rec5_scheduling"
  "../bench/rec5_scheduling.pdb"
  "CMakeFiles/rec5_scheduling.dir/rec5_scheduling.cc.o"
  "CMakeFiles/rec5_scheduling.dir/rec5_scheduling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rec5_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
