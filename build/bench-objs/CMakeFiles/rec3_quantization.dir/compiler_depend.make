# Empty compiler generated dependencies file for rec3_quantization.
# This may be replaced when dependencies are built.
