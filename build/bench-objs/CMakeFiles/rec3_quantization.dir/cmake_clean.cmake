file(REMOVE_RECURSE
  "../bench/rec3_quantization"
  "../bench/rec3_quantization.pdb"
  "CMakeFiles/rec3_quantization.dir/rec3_quantization.cc.o"
  "CMakeFiles/rec3_quantization.dir/rec3_quantization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rec3_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
