# Empty dependencies file for rec4_cim.
# This may be replaced when dependencies are built.
