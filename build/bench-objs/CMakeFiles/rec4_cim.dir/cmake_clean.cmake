file(REMOVE_RECURSE
  "../bench/rec4_cim"
  "../bench/rec4_cim.pdb"
  "CMakeFiles/rec4_cim.dir/rec4_cim.cc.o"
  "CMakeFiles/rec4_cim.dir/rec4_cim.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rec4_cim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
