# Empty dependencies file for fig4_opgraph.
# This may be replaced when dependencies are built.
