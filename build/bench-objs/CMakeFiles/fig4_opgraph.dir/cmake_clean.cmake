file(REMOVE_RECURSE
  "../bench/fig4_opgraph"
  "../bench/fig4_opgraph.pdb"
  "CMakeFiles/fig4_opgraph.dir/fig4_opgraph.cc.o"
  "CMakeFiles/fig4_opgraph.dir/fig4_opgraph.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_opgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
