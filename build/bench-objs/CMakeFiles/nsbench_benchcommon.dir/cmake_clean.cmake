file(REMOVE_RECURSE
  "CMakeFiles/nsbench_benchcommon.dir/common.cc.o"
  "CMakeFiles/nsbench_benchcommon.dir/common.cc.o.d"
  "libnsbench_benchcommon.a"
  "libnsbench_benchcommon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsbench_benchcommon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
