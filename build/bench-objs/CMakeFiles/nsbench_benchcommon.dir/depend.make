# Empty dependencies file for nsbench_benchcommon.
# This may be replaced when dependencies are built.
