file(REMOVE_RECURSE
  "libnsbench_benchcommon.a"
)
