# Empty compiler generated dependencies file for ablation_abduction.
# This may be replaced when dependencies are built.
