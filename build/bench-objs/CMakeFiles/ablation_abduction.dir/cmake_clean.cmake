file(REMOVE_RECURSE
  "../bench/ablation_abduction"
  "../bench/ablation_abduction.pdb"
  "CMakeFiles/ablation_abduction.dir/ablation_abduction.cc.o"
  "CMakeFiles/ablation_abduction.dir/ablation_abduction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_abduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
