# Empty dependencies file for ablation_abduction.
# This may be replaced when dependencies are built.
