file(REMOVE_RECURSE
  "../bench/table4_kernel_counters"
  "../bench/table4_kernel_counters.pdb"
  "CMakeFiles/table4_kernel_counters.dir/table4_kernel_counters.cc.o"
  "CMakeFiles/table4_kernel_counters.dir/table4_kernel_counters.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_kernel_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
