file(REMOVE_RECURSE
  "../bench/ablation_codebook"
  "../bench/ablation_codebook.pdb"
  "CMakeFiles/ablation_codebook.dir/ablation_codebook.cc.o"
  "CMakeFiles/ablation_codebook.dir/ablation_codebook.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_codebook.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
