file(REMOVE_RECURSE
  "../bench/ablation_circular_conv"
  "../bench/ablation_circular_conv.pdb"
  "CMakeFiles/ablation_circular_conv.dir/ablation_circular_conv.cc.o"
  "CMakeFiles/ablation_circular_conv.dir/ablation_circular_conv.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_circular_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
