# Empty dependencies file for ablation_circular_conv.
# This may be replaced when dependencies are built.
