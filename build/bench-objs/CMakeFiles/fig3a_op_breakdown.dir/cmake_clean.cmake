file(REMOVE_RECURSE
  "../bench/fig3a_op_breakdown"
  "../bench/fig3a_op_breakdown.pdb"
  "CMakeFiles/fig3a_op_breakdown.dir/fig3a_op_breakdown.cc.o"
  "CMakeFiles/fig3a_op_breakdown.dir/fig3a_op_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_op_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
