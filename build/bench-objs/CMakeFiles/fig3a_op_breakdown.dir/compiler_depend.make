# Empty compiler generated dependencies file for fig3a_op_breakdown.
# This may be replaced when dependencies are built.
