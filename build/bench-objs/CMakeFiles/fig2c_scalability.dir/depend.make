# Empty dependencies file for fig2c_scalability.
# This may be replaced when dependencies are built.
