file(REMOVE_RECURSE
  "../bench/fig2c_scalability"
  "../bench/fig2c_scalability.pdb"
  "CMakeFiles/fig2c_scalability.dir/fig2c_scalability.cc.o"
  "CMakeFiles/fig2c_scalability.dir/fig2c_scalability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2c_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
