file(REMOVE_RECURSE
  "../bench/table3_workloads"
  "../bench/table3_workloads.pdb"
  "CMakeFiles/table3_workloads.dir/table3_workloads.cc.o"
  "CMakeFiles/table3_workloads.dir/table3_workloads.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
