# Empty dependencies file for fig5_sparsity.
# This may be replaced when dependencies are built.
