file(REMOVE_RECURSE
  "../bench/fig5_sparsity"
  "../bench/fig5_sparsity.pdb"
  "CMakeFiles/fig5_sparsity.dir/fig5_sparsity.cc.o"
  "CMakeFiles/fig5_sparsity.dir/fig5_sparsity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
