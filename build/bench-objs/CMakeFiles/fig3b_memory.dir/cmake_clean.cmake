file(REMOVE_RECURSE
  "../bench/fig3b_memory"
  "../bench/fig3b_memory.pdb"
  "CMakeFiles/fig3b_memory.dir/fig3b_memory.cc.o"
  "CMakeFiles/fig3b_memory.dir/fig3b_memory.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
