# Empty dependencies file for extra_training_profile.
# This may be replaced when dependencies are built.
