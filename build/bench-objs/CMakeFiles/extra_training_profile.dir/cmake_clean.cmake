file(REMOVE_RECURSE
  "../bench/extra_training_profile"
  "../bench/extra_training_profile.pdb"
  "CMakeFiles/extra_training_profile.dir/extra_training_profile.cc.o"
  "CMakeFiles/extra_training_profile.dir/extra_training_profile.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_training_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
