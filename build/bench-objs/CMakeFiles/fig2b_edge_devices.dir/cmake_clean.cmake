file(REMOVE_RECURSE
  "../bench/fig2b_edge_devices"
  "../bench/fig2b_edge_devices.pdb"
  "CMakeFiles/fig2b_edge_devices.dir/fig2b_edge_devices.cc.o"
  "CMakeFiles/fig2b_edge_devices.dir/fig2b_edge_devices.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_edge_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
