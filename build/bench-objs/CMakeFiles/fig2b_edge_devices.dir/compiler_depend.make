# Empty compiler generated dependencies file for fig2b_edge_devices.
# This may be replaced when dependencies are built.
