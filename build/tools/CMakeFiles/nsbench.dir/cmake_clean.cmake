file(REMOVE_RECURSE
  "CMakeFiles/nsbench.dir/nsbench_cli.cc.o"
  "CMakeFiles/nsbench.dir/nsbench_cli.cc.o.d"
  "nsbench"
  "nsbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
