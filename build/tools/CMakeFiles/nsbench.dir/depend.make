# Empty dependencies file for nsbench.
# This may be replaced when dependencies are built.
