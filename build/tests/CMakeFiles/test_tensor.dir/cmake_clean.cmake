file(REMOVE_RECURSE
  "CMakeFiles/test_tensor.dir/tensor/test_conv.cc.o"
  "CMakeFiles/test_tensor.dir/tensor/test_conv.cc.o.d"
  "CMakeFiles/test_tensor.dir/tensor/test_elementwise.cc.o"
  "CMakeFiles/test_tensor.dir/tensor/test_elementwise.cc.o.d"
  "CMakeFiles/test_tensor.dir/tensor/test_matmul.cc.o"
  "CMakeFiles/test_tensor.dir/tensor/test_matmul.cc.o.d"
  "CMakeFiles/test_tensor.dir/tensor/test_tensor.cc.o"
  "CMakeFiles/test_tensor.dir/tensor/test_tensor.cc.o.d"
  "CMakeFiles/test_tensor.dir/tensor/test_transform.cc.o"
  "CMakeFiles/test_tensor.dir/tensor/test_transform.cc.o.d"
  "test_tensor"
  "test_tensor.pdb"
  "test_tensor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
