file(REMOVE_RECURSE
  "CMakeFiles/test_vsa.dir/vsa/test_binary.cc.o"
  "CMakeFiles/test_vsa.dir/vsa/test_binary.cc.o.d"
  "CMakeFiles/test_vsa.dir/vsa/test_codebook.cc.o"
  "CMakeFiles/test_vsa.dir/vsa/test_codebook.cc.o.d"
  "CMakeFiles/test_vsa.dir/vsa/test_ops.cc.o"
  "CMakeFiles/test_vsa.dir/vsa/test_ops.cc.o.d"
  "CMakeFiles/test_vsa.dir/vsa/test_quantized.cc.o"
  "CMakeFiles/test_vsa.dir/vsa/test_quantized.cc.o.d"
  "test_vsa"
  "test_vsa.pdb"
  "test_vsa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
