# Empty dependencies file for test_vsa.
# This may be replaced when dependencies are built.
