
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn/test_autograd.cc" "tests/CMakeFiles/test_nn.dir/nn/test_autograd.cc.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_autograd.cc.o.d"
  "/root/repo/tests/nn/test_layers.cc" "tests/CMakeFiles/test_nn.dir/nn/test_layers.cc.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_layers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/nsbench_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/vsa/CMakeFiles/nsbench_vsa.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/nsbench_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/nsbench_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nsbench_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nsbench_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
