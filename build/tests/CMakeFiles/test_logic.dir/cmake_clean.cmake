file(REMOVE_RECURSE
  "CMakeFiles/test_logic.dir/logic/test_bounds.cc.o"
  "CMakeFiles/test_logic.dir/logic/test_bounds.cc.o.d"
  "CMakeFiles/test_logic.dir/logic/test_fuzzy.cc.o"
  "CMakeFiles/test_logic.dir/logic/test_fuzzy.cc.o.d"
  "CMakeFiles/test_logic.dir/logic/test_kb.cc.o"
  "CMakeFiles/test_logic.dir/logic/test_kb.cc.o.d"
  "test_logic"
  "test_logic.pdb"
  "test_logic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
