file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_opgraph.cc.o"
  "CMakeFiles/test_core.dir/core/test_opgraph.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_profiler.cc.o"
  "CMakeFiles/test_core.dir/core/test_profiler.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_report.cc.o"
  "CMakeFiles/test_core.dir/core/test_report.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_taxonomy.cc.o"
  "CMakeFiles/test_core.dir/core/test_taxonomy.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_workload_registry.cc.o"
  "CMakeFiles/test_core.dir/core/test_workload_registry.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
