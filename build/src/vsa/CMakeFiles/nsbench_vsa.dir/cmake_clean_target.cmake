file(REMOVE_RECURSE
  "libnsbench_vsa.a"
)
