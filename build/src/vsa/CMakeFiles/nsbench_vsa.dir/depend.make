# Empty dependencies file for nsbench_vsa.
# This may be replaced when dependencies are built.
