file(REMOVE_RECURSE
  "CMakeFiles/nsbench_vsa.dir/binary.cc.o"
  "CMakeFiles/nsbench_vsa.dir/binary.cc.o.d"
  "CMakeFiles/nsbench_vsa.dir/codebook.cc.o"
  "CMakeFiles/nsbench_vsa.dir/codebook.cc.o.d"
  "CMakeFiles/nsbench_vsa.dir/fft.cc.o"
  "CMakeFiles/nsbench_vsa.dir/fft.cc.o.d"
  "CMakeFiles/nsbench_vsa.dir/ops.cc.o"
  "CMakeFiles/nsbench_vsa.dir/ops.cc.o.d"
  "CMakeFiles/nsbench_vsa.dir/quantized.cc.o"
  "CMakeFiles/nsbench_vsa.dir/quantized.cc.o.d"
  "CMakeFiles/nsbench_vsa.dir/resonator.cc.o"
  "CMakeFiles/nsbench_vsa.dir/resonator.cc.o.d"
  "libnsbench_vsa.a"
  "libnsbench_vsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsbench_vsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
