
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vsa/binary.cc" "src/vsa/CMakeFiles/nsbench_vsa.dir/binary.cc.o" "gcc" "src/vsa/CMakeFiles/nsbench_vsa.dir/binary.cc.o.d"
  "/root/repo/src/vsa/codebook.cc" "src/vsa/CMakeFiles/nsbench_vsa.dir/codebook.cc.o" "gcc" "src/vsa/CMakeFiles/nsbench_vsa.dir/codebook.cc.o.d"
  "/root/repo/src/vsa/fft.cc" "src/vsa/CMakeFiles/nsbench_vsa.dir/fft.cc.o" "gcc" "src/vsa/CMakeFiles/nsbench_vsa.dir/fft.cc.o.d"
  "/root/repo/src/vsa/ops.cc" "src/vsa/CMakeFiles/nsbench_vsa.dir/ops.cc.o" "gcc" "src/vsa/CMakeFiles/nsbench_vsa.dir/ops.cc.o.d"
  "/root/repo/src/vsa/quantized.cc" "src/vsa/CMakeFiles/nsbench_vsa.dir/quantized.cc.o" "gcc" "src/vsa/CMakeFiles/nsbench_vsa.dir/quantized.cc.o.d"
  "/root/repo/src/vsa/resonator.cc" "src/vsa/CMakeFiles/nsbench_vsa.dir/resonator.cc.o" "gcc" "src/vsa/CMakeFiles/nsbench_vsa.dir/resonator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/nsbench_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nsbench_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nsbench_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
