
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/nsbench_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/nsbench_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/device.cc" "src/sim/CMakeFiles/nsbench_sim.dir/device.cc.o" "gcc" "src/sim/CMakeFiles/nsbench_sim.dir/device.cc.o.d"
  "/root/repo/src/sim/kernels.cc" "src/sim/CMakeFiles/nsbench_sim.dir/kernels.cc.o" "gcc" "src/sim/CMakeFiles/nsbench_sim.dir/kernels.cc.o.d"
  "/root/repo/src/sim/projection.cc" "src/sim/CMakeFiles/nsbench_sim.dir/projection.cc.o" "gcc" "src/sim/CMakeFiles/nsbench_sim.dir/projection.cc.o.d"
  "/root/repo/src/sim/roofline.cc" "src/sim/CMakeFiles/nsbench_sim.dir/roofline.cc.o" "gcc" "src/sim/CMakeFiles/nsbench_sim.dir/roofline.cc.o.d"
  "/root/repo/src/sim/schedule.cc" "src/sim/CMakeFiles/nsbench_sim.dir/schedule.cc.o" "gcc" "src/sim/CMakeFiles/nsbench_sim.dir/schedule.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nsbench_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nsbench_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
