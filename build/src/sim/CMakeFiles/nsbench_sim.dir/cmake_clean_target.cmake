file(REMOVE_RECURSE
  "libnsbench_sim.a"
)
