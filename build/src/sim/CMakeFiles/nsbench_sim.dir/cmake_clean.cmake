file(REMOVE_RECURSE
  "CMakeFiles/nsbench_sim.dir/cache.cc.o"
  "CMakeFiles/nsbench_sim.dir/cache.cc.o.d"
  "CMakeFiles/nsbench_sim.dir/device.cc.o"
  "CMakeFiles/nsbench_sim.dir/device.cc.o.d"
  "CMakeFiles/nsbench_sim.dir/kernels.cc.o"
  "CMakeFiles/nsbench_sim.dir/kernels.cc.o.d"
  "CMakeFiles/nsbench_sim.dir/projection.cc.o"
  "CMakeFiles/nsbench_sim.dir/projection.cc.o.d"
  "CMakeFiles/nsbench_sim.dir/roofline.cc.o"
  "CMakeFiles/nsbench_sim.dir/roofline.cc.o.d"
  "CMakeFiles/nsbench_sim.dir/schedule.cc.o"
  "CMakeFiles/nsbench_sim.dir/schedule.cc.o.d"
  "libnsbench_sim.a"
  "libnsbench_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsbench_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
