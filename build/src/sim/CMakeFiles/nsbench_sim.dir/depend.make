# Empty dependencies file for nsbench_sim.
# This may be replaced when dependencies are built.
