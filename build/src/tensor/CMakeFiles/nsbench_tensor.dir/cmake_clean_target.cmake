file(REMOVE_RECURSE
  "libnsbench_tensor.a"
)
