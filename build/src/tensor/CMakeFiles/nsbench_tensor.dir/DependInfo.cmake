
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/ops_conv.cc" "src/tensor/CMakeFiles/nsbench_tensor.dir/ops_conv.cc.o" "gcc" "src/tensor/CMakeFiles/nsbench_tensor.dir/ops_conv.cc.o.d"
  "/root/repo/src/tensor/ops_elementwise.cc" "src/tensor/CMakeFiles/nsbench_tensor.dir/ops_elementwise.cc.o" "gcc" "src/tensor/CMakeFiles/nsbench_tensor.dir/ops_elementwise.cc.o.d"
  "/root/repo/src/tensor/ops_matmul.cc" "src/tensor/CMakeFiles/nsbench_tensor.dir/ops_matmul.cc.o" "gcc" "src/tensor/CMakeFiles/nsbench_tensor.dir/ops_matmul.cc.o.d"
  "/root/repo/src/tensor/ops_transform.cc" "src/tensor/CMakeFiles/nsbench_tensor.dir/ops_transform.cc.o" "gcc" "src/tensor/CMakeFiles/nsbench_tensor.dir/ops_transform.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/tensor/CMakeFiles/nsbench_tensor.dir/tensor.cc.o" "gcc" "src/tensor/CMakeFiles/nsbench_tensor.dir/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nsbench_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nsbench_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
