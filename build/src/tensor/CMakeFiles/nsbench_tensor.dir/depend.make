# Empty dependencies file for nsbench_tensor.
# This may be replaced when dependencies are built.
