file(REMOVE_RECURSE
  "CMakeFiles/nsbench_tensor.dir/ops_conv.cc.o"
  "CMakeFiles/nsbench_tensor.dir/ops_conv.cc.o.d"
  "CMakeFiles/nsbench_tensor.dir/ops_elementwise.cc.o"
  "CMakeFiles/nsbench_tensor.dir/ops_elementwise.cc.o.d"
  "CMakeFiles/nsbench_tensor.dir/ops_matmul.cc.o"
  "CMakeFiles/nsbench_tensor.dir/ops_matmul.cc.o.d"
  "CMakeFiles/nsbench_tensor.dir/ops_transform.cc.o"
  "CMakeFiles/nsbench_tensor.dir/ops_transform.cc.o.d"
  "CMakeFiles/nsbench_tensor.dir/tensor.cc.o"
  "CMakeFiles/nsbench_tensor.dir/tensor.cc.o.d"
  "libnsbench_tensor.a"
  "libnsbench_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsbench_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
