
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/lnn.cc" "src/workloads/CMakeFiles/nsbench_workloads.dir/lnn.cc.o" "gcc" "src/workloads/CMakeFiles/nsbench_workloads.dir/lnn.cc.o.d"
  "/root/repo/src/workloads/ltn.cc" "src/workloads/CMakeFiles/nsbench_workloads.dir/ltn.cc.o" "gcc" "src/workloads/CMakeFiles/nsbench_workloads.dir/ltn.cc.o.d"
  "/root/repo/src/workloads/nlm.cc" "src/workloads/CMakeFiles/nsbench_workloads.dir/nlm.cc.o" "gcc" "src/workloads/CMakeFiles/nsbench_workloads.dir/nlm.cc.o.d"
  "/root/repo/src/workloads/nvsa.cc" "src/workloads/CMakeFiles/nsbench_workloads.dir/nvsa.cc.o" "gcc" "src/workloads/CMakeFiles/nsbench_workloads.dir/nvsa.cc.o.d"
  "/root/repo/src/workloads/perception.cc" "src/workloads/CMakeFiles/nsbench_workloads.dir/perception.cc.o" "gcc" "src/workloads/CMakeFiles/nsbench_workloads.dir/perception.cc.o.d"
  "/root/repo/src/workloads/prae.cc" "src/workloads/CMakeFiles/nsbench_workloads.dir/prae.cc.o" "gcc" "src/workloads/CMakeFiles/nsbench_workloads.dir/prae.cc.o.d"
  "/root/repo/src/workloads/register.cc" "src/workloads/CMakeFiles/nsbench_workloads.dir/register.cc.o" "gcc" "src/workloads/CMakeFiles/nsbench_workloads.dir/register.cc.o.d"
  "/root/repo/src/workloads/vsait.cc" "src/workloads/CMakeFiles/nsbench_workloads.dir/vsait.cc.o" "gcc" "src/workloads/CMakeFiles/nsbench_workloads.dir/vsait.cc.o.d"
  "/root/repo/src/workloads/zeroc.cc" "src/workloads/CMakeFiles/nsbench_workloads.dir/zeroc.cc.o" "gcc" "src/workloads/CMakeFiles/nsbench_workloads.dir/zeroc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/nsbench_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/nsbench_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/vsa/CMakeFiles/nsbench_vsa.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/nsbench_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/nsbench_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nsbench_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nsbench_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
