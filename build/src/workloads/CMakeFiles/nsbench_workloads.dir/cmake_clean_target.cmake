file(REMOVE_RECURSE
  "libnsbench_workloads.a"
)
