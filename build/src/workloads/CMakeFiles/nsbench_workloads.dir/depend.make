# Empty dependencies file for nsbench_workloads.
# This may be replaced when dependencies are built.
