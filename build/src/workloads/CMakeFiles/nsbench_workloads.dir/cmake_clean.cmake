file(REMOVE_RECURSE
  "CMakeFiles/nsbench_workloads.dir/lnn.cc.o"
  "CMakeFiles/nsbench_workloads.dir/lnn.cc.o.d"
  "CMakeFiles/nsbench_workloads.dir/ltn.cc.o"
  "CMakeFiles/nsbench_workloads.dir/ltn.cc.o.d"
  "CMakeFiles/nsbench_workloads.dir/nlm.cc.o"
  "CMakeFiles/nsbench_workloads.dir/nlm.cc.o.d"
  "CMakeFiles/nsbench_workloads.dir/nvsa.cc.o"
  "CMakeFiles/nsbench_workloads.dir/nvsa.cc.o.d"
  "CMakeFiles/nsbench_workloads.dir/perception.cc.o"
  "CMakeFiles/nsbench_workloads.dir/perception.cc.o.d"
  "CMakeFiles/nsbench_workloads.dir/prae.cc.o"
  "CMakeFiles/nsbench_workloads.dir/prae.cc.o.d"
  "CMakeFiles/nsbench_workloads.dir/register.cc.o"
  "CMakeFiles/nsbench_workloads.dir/register.cc.o.d"
  "CMakeFiles/nsbench_workloads.dir/vsait.cc.o"
  "CMakeFiles/nsbench_workloads.dir/vsait.cc.o.d"
  "CMakeFiles/nsbench_workloads.dir/zeroc.cc.o"
  "CMakeFiles/nsbench_workloads.dir/zeroc.cc.o.d"
  "libnsbench_workloads.a"
  "libnsbench_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsbench_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
