file(REMOVE_RECURSE
  "CMakeFiles/nsbench_core.dir/opgraph.cc.o"
  "CMakeFiles/nsbench_core.dir/opgraph.cc.o.d"
  "CMakeFiles/nsbench_core.dir/paradigms.cc.o"
  "CMakeFiles/nsbench_core.dir/paradigms.cc.o.d"
  "CMakeFiles/nsbench_core.dir/profiler.cc.o"
  "CMakeFiles/nsbench_core.dir/profiler.cc.o.d"
  "CMakeFiles/nsbench_core.dir/report.cc.o"
  "CMakeFiles/nsbench_core.dir/report.cc.o.d"
  "CMakeFiles/nsbench_core.dir/taxonomy.cc.o"
  "CMakeFiles/nsbench_core.dir/taxonomy.cc.o.d"
  "CMakeFiles/nsbench_core.dir/workload.cc.o"
  "CMakeFiles/nsbench_core.dir/workload.cc.o.d"
  "libnsbench_core.a"
  "libnsbench_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsbench_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
