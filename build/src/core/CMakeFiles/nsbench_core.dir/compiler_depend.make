# Empty compiler generated dependencies file for nsbench_core.
# This may be replaced when dependencies are built.
