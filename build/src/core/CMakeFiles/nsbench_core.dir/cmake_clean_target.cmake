file(REMOVE_RECURSE
  "libnsbench_core.a"
)
