
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/opgraph.cc" "src/core/CMakeFiles/nsbench_core.dir/opgraph.cc.o" "gcc" "src/core/CMakeFiles/nsbench_core.dir/opgraph.cc.o.d"
  "/root/repo/src/core/paradigms.cc" "src/core/CMakeFiles/nsbench_core.dir/paradigms.cc.o" "gcc" "src/core/CMakeFiles/nsbench_core.dir/paradigms.cc.o.d"
  "/root/repo/src/core/profiler.cc" "src/core/CMakeFiles/nsbench_core.dir/profiler.cc.o" "gcc" "src/core/CMakeFiles/nsbench_core.dir/profiler.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/nsbench_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/nsbench_core.dir/report.cc.o.d"
  "/root/repo/src/core/taxonomy.cc" "src/core/CMakeFiles/nsbench_core.dir/taxonomy.cc.o" "gcc" "src/core/CMakeFiles/nsbench_core.dir/taxonomy.cc.o.d"
  "/root/repo/src/core/workload.cc" "src/core/CMakeFiles/nsbench_core.dir/workload.cc.o" "gcc" "src/core/CMakeFiles/nsbench_core.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nsbench_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
