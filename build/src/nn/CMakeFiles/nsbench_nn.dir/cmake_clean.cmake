file(REMOVE_RECURSE
  "CMakeFiles/nsbench_nn.dir/autograd.cc.o"
  "CMakeFiles/nsbench_nn.dir/autograd.cc.o.d"
  "CMakeFiles/nsbench_nn.dir/layers.cc.o"
  "CMakeFiles/nsbench_nn.dir/layers.cc.o.d"
  "libnsbench_nn.a"
  "libnsbench_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsbench_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
