# Empty dependencies file for nsbench_nn.
# This may be replaced when dependencies are built.
