file(REMOVE_RECURSE
  "libnsbench_nn.a"
)
