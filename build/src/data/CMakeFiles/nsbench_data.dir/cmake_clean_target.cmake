file(REMOVE_RECURSE
  "libnsbench_data.a"
)
