
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/familytree.cc" "src/data/CMakeFiles/nsbench_data.dir/familytree.cc.o" "gcc" "src/data/CMakeFiles/nsbench_data.dir/familytree.cc.o.d"
  "/root/repo/src/data/images.cc" "src/data/CMakeFiles/nsbench_data.dir/images.cc.o" "gcc" "src/data/CMakeFiles/nsbench_data.dir/images.cc.o.d"
  "/root/repo/src/data/kbgen.cc" "src/data/CMakeFiles/nsbench_data.dir/kbgen.cc.o" "gcc" "src/data/CMakeFiles/nsbench_data.dir/kbgen.cc.o.d"
  "/root/repo/src/data/raven.cc" "src/data/CMakeFiles/nsbench_data.dir/raven.cc.o" "gcc" "src/data/CMakeFiles/nsbench_data.dir/raven.cc.o.d"
  "/root/repo/src/data/tabular.cc" "src/data/CMakeFiles/nsbench_data.dir/tabular.cc.o" "gcc" "src/data/CMakeFiles/nsbench_data.dir/tabular.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/nsbench_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/nsbench_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nsbench_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nsbench_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
