# Empty compiler generated dependencies file for nsbench_data.
# This may be replaced when dependencies are built.
