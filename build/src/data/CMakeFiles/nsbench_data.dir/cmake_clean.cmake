file(REMOVE_RECURSE
  "CMakeFiles/nsbench_data.dir/familytree.cc.o"
  "CMakeFiles/nsbench_data.dir/familytree.cc.o.d"
  "CMakeFiles/nsbench_data.dir/images.cc.o"
  "CMakeFiles/nsbench_data.dir/images.cc.o.d"
  "CMakeFiles/nsbench_data.dir/kbgen.cc.o"
  "CMakeFiles/nsbench_data.dir/kbgen.cc.o.d"
  "CMakeFiles/nsbench_data.dir/raven.cc.o"
  "CMakeFiles/nsbench_data.dir/raven.cc.o.d"
  "CMakeFiles/nsbench_data.dir/tabular.cc.o"
  "CMakeFiles/nsbench_data.dir/tabular.cc.o.d"
  "libnsbench_data.a"
  "libnsbench_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsbench_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
