
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logic/bounds.cc" "src/logic/CMakeFiles/nsbench_logic.dir/bounds.cc.o" "gcc" "src/logic/CMakeFiles/nsbench_logic.dir/bounds.cc.o.d"
  "/root/repo/src/logic/fuzzy.cc" "src/logic/CMakeFiles/nsbench_logic.dir/fuzzy.cc.o" "gcc" "src/logic/CMakeFiles/nsbench_logic.dir/fuzzy.cc.o.d"
  "/root/repo/src/logic/kb.cc" "src/logic/CMakeFiles/nsbench_logic.dir/kb.cc.o" "gcc" "src/logic/CMakeFiles/nsbench_logic.dir/kb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nsbench_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nsbench_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
