file(REMOVE_RECURSE
  "libnsbench_logic.a"
)
