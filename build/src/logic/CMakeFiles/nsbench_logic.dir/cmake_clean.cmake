file(REMOVE_RECURSE
  "CMakeFiles/nsbench_logic.dir/bounds.cc.o"
  "CMakeFiles/nsbench_logic.dir/bounds.cc.o.d"
  "CMakeFiles/nsbench_logic.dir/fuzzy.cc.o"
  "CMakeFiles/nsbench_logic.dir/fuzzy.cc.o.d"
  "CMakeFiles/nsbench_logic.dir/kb.cc.o"
  "CMakeFiles/nsbench_logic.dir/kb.cc.o.d"
  "libnsbench_logic.a"
  "libnsbench_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsbench_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
