# Empty dependencies file for nsbench_logic.
# This may be replaced when dependencies are built.
