file(REMOVE_RECURSE
  "libnsbench_util.a"
)
