# Empty compiler generated dependencies file for nsbench_util.
# This may be replaced when dependencies are built.
