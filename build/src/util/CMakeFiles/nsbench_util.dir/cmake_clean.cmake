file(REMOVE_RECURSE
  "CMakeFiles/nsbench_util.dir/format.cc.o"
  "CMakeFiles/nsbench_util.dir/format.cc.o.d"
  "CMakeFiles/nsbench_util.dir/logging.cc.o"
  "CMakeFiles/nsbench_util.dir/logging.cc.o.d"
  "CMakeFiles/nsbench_util.dir/stats.cc.o"
  "CMakeFiles/nsbench_util.dir/stats.cc.o.d"
  "CMakeFiles/nsbench_util.dir/table.cc.o"
  "CMakeFiles/nsbench_util.dir/table.cc.o.d"
  "libnsbench_util.a"
  "libnsbench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsbench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
