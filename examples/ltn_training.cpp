/**
 * @file
 * Training a Logic Tensor Network with the autograd engine.
 *
 * The inference workloads use constructed weights; this example shows
 * the real LTN learning loop: predicate MLPs start from random
 * initialization and are trained by gradient ascent on the fuzzy
 * satisfaction of the theory
 *
 *   (supervision)  Smokes(x) = s_x  for a few labelled individuals
 *   (axiom)        forall x: Smokes(x) -> Cancer(x)
 *   (axiom)        forall x,y: Friends(x,y) ^ Smokes(x) -> Smokes(y)
 *
 * under product real logic, with the differentiable p-mean-error
 * quantifier. Satisfaction rises during training and the learned
 * Smokes predicate generalizes to the unlabelled population.
 */

#include <iostream>

#include "data/tabular.hh"
#include "nn/autograd.hh"
#include "tensor/ops.hh"
#include "util/format.hh"
#include "util/rng.hh"

namespace
{

using namespace nsbench;
using nn::Variable;
using tensor::Tensor;

/** Differentiable forall: 1 - mean((1-x)^p)^(1/p). */
Variable
forAll(const Variable &truths, float p = 2.0f)
{
    Variable complement = subV(
        Variable(Tensor::ones(truths.value().shape())), truths);
    Variable mean_pow = meanAllV(powV(complement, p));
    return subV(Variable(Tensor::ones({1})),
                powV(mean_pow, 1.0f / p));
}

/** Reichenbach implication a -> b as 1 - a + a*b. */
Variable
implies(const Variable &a, const Variable &b)
{
    Variable ones(Tensor::ones(a.value().shape()));
    return addV(subV(ones, a), mulV(a, b));
}

} // namespace

int
main()
{
    util::Rng rng(123);
    auto data = data::makeRelationalDataset(60, 8, 6, rng);
    int64_t n = data.people;

    // Supervision on 20% of individuals only.
    std::vector<int64_t> labelled;
    for (int64_t i = 0; i < n; i += 5)
        labelled.push_back(i);
    Tensor labels({static_cast<int64_t>(labelled.size()), 1});
    for (size_t k = 0; k < labelled.size(); k++) {
        labels(static_cast<int64_t>(k), 0) =
            data.smokes[static_cast<size_t>(labelled[k])] ? 1.0f
                                                          : 0.0f;
    }

    // Friendship pairs as index lists for the relational axiom.
    std::vector<int64_t> friend_a, friend_b;
    for (const auto &[a, b] : data.friendships) {
        friend_a.push_back(a);
        friend_b.push_back(b);
        friend_a.push_back(b);
        friend_b.push_back(a);
    }

    // Random-init predicate MLPs (1 hidden layer each).
    const int64_t hidden = 16;
    Variable sw1(Tensor::randn({hidden, data.featureDim}, rng, 0.0f,
                               0.5f),
                 true);
    Variable sb1(Tensor::zeros({hidden}), true);
    Variable sw2(Tensor::randn({1, hidden}, rng, 0.0f, 0.5f), true);
    Variable sb2(Tensor::zeros({1}), true);
    Variable cw1(Tensor::randn({hidden, data.featureDim}, rng, 0.0f,
                               0.5f),
                 true);
    Variable cb1(Tensor::zeros({hidden}), true);
    Variable cw2(Tensor::randn({1, hidden}, rng, 0.0f, 0.5f), true);
    Variable cb2(Tensor::zeros({1}), true);

    nn::SgdOptimizer opt(0.5f);
    for (Variable *p :
         {&sw1, &sb1, &sw2, &sb2, &cw1, &cb1, &cw2, &cb2})
        opt.addParameter(*p);

    auto smokes_of = [&](const Tensor &features) {
        Variable h = tanhV(
            linearV(Variable(features.clone()), sw1, sb1));
        return sigmoidV(linearV(h, sw2, sb2));
    };
    auto cancer_of = [&](const Tensor &features) {
        Variable h = tanhV(
            linearV(Variable(features.clone()), cw1, cb1));
        return sigmoidV(linearV(h, cw2, cb2));
    };

    Tensor labelled_features = tensor::gatherRows(
        data.features, labelled);
    Tensor friends_a_features = tensor::gatherRows(data.features,
                                                   friend_a);
    Tensor friends_b_features = tensor::gatherRows(data.features,
                                                   friend_b);

    std::cout << "epoch  satisfaction  smokes-accuracy\n";
    for (int epoch = 0; epoch <= 120; epoch++) {
        // Grounding over the whole population and the pair lists.
        Variable smokes_all = smokes_of(data.features);
        Variable cancer_all = cancer_of(data.features);
        Variable smokes_lab = smokes_of(labelled_features);
        Variable smokes_fa = smokes_of(friends_a_features);
        Variable smokes_fb = smokes_of(friends_b_features);

        // Supervision axiom: labelled Smokes values match.
        Variable lab(labels.clone());
        Variable agreement = addV(
            mulV(smokes_lab, lab),
            mulV(subV(Variable(Tensor::ones(lab.value().shape())),
                      smokes_lab),
                 subV(Variable(Tensor::ones(lab.value().shape())),
                      lab)));
        Variable sup_sat = forAll(agreement);

        // forall x: Smokes -> Cancer.
        Variable ax1 = forAll(implies(smokes_all, cancer_all));
        // forall friendship (a,b): Smokes(a) -> Smokes(b).
        Variable ax2 = forAll(implies(smokes_fa, smokes_fb));

        Variable sat = mulScalarV(
            addV(addV(mulScalarV(sup_sat, 2.0f), ax1), ax2),
            1.0f / 4.0f);
        Variable loss = subV(Variable(Tensor::ones({1})), sat);
        loss.backward();
        opt.step();

        if (epoch % 20 == 0) {
            // Accuracy of the learned Smokes predicate vs the latent
            // trait, over everyone (including unlabelled).
            int correct = 0;
            for (int64_t i = 0; i < n; i++) {
                bool pred = smokes_all.value()(i, 0) > 0.5f;
                if (pred == data.smokes[static_cast<size_t>(i)])
                    correct++;
            }
            std::cout << util::fixedStr(epoch, 0) << "      "
                      << util::fixedStr(sat.value().flat(0), 3)
                      << "         "
                      << util::percentStr(
                             static_cast<double>(correct) /
                             static_cast<double>(n))
                      << "\n";
        }
    }
    std::cout << "\nThe theory's satisfaction and the predicate's "
                 "generalization rise together: knowledge (axioms) "
                 "substitutes for labels — the LTN data-efficiency "
                 "claim in the paper's Tab. III.\n";
    return 0;
}
