/**
 * @file
 * Theorem proving with the logic substrate: author a small knowledge
 * base, saturate it with forward chaining, and inspect LNN-style
 * truth bounds under incomplete knowledge.
 */

#include <iostream>

#include "logic/bounds.hh"
#include "logic/fuzzy.hh"
#include "logic/kb.hh"

int
main()
{
    using namespace nsbench::logic;

    // --- Part 1: crisp Horn reasoning over a hand-authored KB.
    KnowledgeBase kb;
    PredId animal = kb.addPredicate("animal", 1);
    PredId mammal = kb.addPredicate("mammal", 1);
    PredId carnivore = kb.addPredicate("carnivore", 1);
    PredId hunts = kb.addPredicate("hunts", 2);
    PredId predator_of = kb.addPredicate("predatorOf", 1);
    PredId apex = kb.addPredicate("apex", 1);

    ConstId wolf = kb.addConstant("wolf");
    ConstId lynx = kb.addConstant("lynx");
    ConstId deer = kb.addConstant("deer");
    ConstId hare = kb.addConstant("hare");

    for (ConstId c : {wolf, lynx, deer, hare})
        kb.addFact({animal, {c}});
    for (ConstId c : {wolf, lynx, deer, hare})
        kb.addFact({mammal, {c}});
    kb.addFact({carnivore, {wolf}});
    kb.addFact({carnivore, {lynx}});
    kb.addFact({hunts, {wolf, deer}});
    kb.addFact({hunts, {wolf, hare}});
    kb.addFact({hunts, {lynx, hare}});

    // predatorOf(x) :- carnivore(x), hunts(x, y).
    {
        Rule r;
        r.name = "predator";
        r.head = {predator_of, {Term::var(0)}};
        r.body = {{carnivore, {Term::var(0)}},
                  {hunts, {Term::var(0), Term::var(1)}}};
        kb.addRule(std::move(r));
    }
    // apex(x) :- predatorOf(x), hunts(x, y), hunts(x, z) with y != z
    // approximated as two hunts atoms (duplicates allowed in Horn
    // logic; the wolf qualifies with two distinct prey).
    {
        Rule r;
        r.name = "apex";
        r.head = {apex, {Term::var(0)}};
        r.body = {{predator_of, {Term::var(0)}},
                  {hunts, {Term::var(0), Term::var(1)}},
                  {hunts, {Term::var(0), Term::var(2)}}};
        kb.addRule(std::move(r));
    }

    size_t derived = kb.forwardChain();
    std::cout << "forward chaining derived " << derived
              << " new facts:\n";
    for (PredId p : {predator_of, apex}) {
        for (const auto &fact : kb.facts(p)) {
            std::cout << "  " << kb.predicateName(p) << "("
                      << kb.constantName(fact.args[0]) << ")\n";
        }
    }

    // --- Part 2: truth bounds under uncertainty (the LNN view).
    std::cout << "\ntruth-bound reasoning with partial knowledge:\n";
    TruthBounds is_carnivore = TruthBounds::exactly(0.9f);
    TruthBounds does_hunt = TruthBounds{0.6f, 1.0f}; // only a lower hint
    TruthBounds conj = boundsAnd(is_carnivore, does_hunt);
    std::cout << "  carnivore=[0.9,0.9] AND hunts=[0.6,1.0] -> ["
              << conj.lower << ", " << conj.upper << "]\n";

    TruthBounds implied = boundsImplies(conj, TruthBounds::unknown());
    std::cout << "  (that conjunction) -> predator : ["
              << implied.lower << ", " << implied.upper
              << "]  (unknown consequent leaves it open)\n";

    // Modus ponens through the downward pass: the conjunction is
    // known true, one conjunct is known true, so the other tightens.
    TruthBounds inferred = downwardAnd(TruthBounds{0.8f, 1.0f},
                                       TruthBounds::certainTrue());
    std::cout << "  downward: AND=[0.8,1.0], other=[1,1] -> this >= "
              << inferred.lower << "\n";

    // --- Part 3: the same connectives in fuzzy point semantics.
    std::cout << "\nfuzzy semantics across t-norm families "
                 "(a=0.8, b=0.6):\n";
    for (auto kind : {TNormKind::Lukasiewicz, TNormKind::Goedel,
                      TNormKind::Product}) {
        std::cout << "  and=" << tNorm(kind, 0.8f, 0.6f)
                  << " or=" << tConorm(kind, 0.8f, 0.6f)
                  << " implies=" << residuum(kind, 0.8f, 0.6f) << "\n";
    }
    return 0;
}
