/**
 * @file
 * VSAIT-style unpaired image translation, visualized: a stripe-domain
 * scene is hashed into the bipolar hyperspace, its source style is
 * unbound, the target style is bound, and the result is synthesized
 * from real target-domain patches. ASCII renders show the source, the
 * target exemplar and the translation; the semantic layout must
 * survive (no "semantic flipping").
 */

#include <iostream>

#include "data/images.hh"
#include "tensor/ops.hh"
#include "util/format.hh"
#include "util/rng.hh"
#include "vsa/codebook.hh"
#include "vsa/ops.hh"

namespace
{

using namespace nsbench;
using tensor::Tensor;

void
printImage(const Tensor &image, int64_t size)
{
    const char *shades = " .:-=+*#%@";
    for (int64_t y = 0; y < size; y += 2) {
        for (int64_t x = 0; x < size; x++) {
            float v = image(0, y, x);
            int idx =
                std::clamp(static_cast<int>(v * 10.0f), 0, 9);
            std::cout << shades[idx];
        }
        std::cout << "\n";
    }
    std::cout << "\n";
}

} // namespace

int
main()
{
    constexpr int64_t size = 48;
    constexpr int64_t patch = 4;
    constexpr int64_t dim = 512;
    constexpr int64_t per_side = size / patch;

    util::Rng rng(2024);
    auto source = data::makeDomainImage(data::ImageDomain::Source,
                                        size, rng);
    auto target = data::makeDomainImage(data::ImageDomain::Target,
                                        size, rng);

    std::cout << "source (stripe domain):\n";
    printImage(source.pixels, size);
    std::cout << "target exemplar (checker domain):\n";
    printImage(target.pixels, size);

    // Hash every patch of both images into the hyperspace.
    Tensor projection = Tensor::randn({dim, patch * patch}, rng);
    auto hash_patches = [&](const Tensor &img) {
        Tensor patches({per_side * per_side, patch * patch});
        for (int64_t pr = 0; pr < per_side; pr++) {
            for (int64_t pc = 0; pc < per_side; pc++) {
                for (int64_t y = 0; y < patch; y++) {
                    for (int64_t x = 0; x < patch; x++) {
                        patches(pr * per_side + pc, y * patch + x) =
                            img(0, pr * patch + y, pc * patch + x);
                    }
                }
            }
        }
        return std::pair(patches,
                         tensor::sign(tensor::matmul(
                             patches,
                             tensor::transpose2d(projection))));
    };
    auto [src_patches, src_hv] = hash_patches(source.pixels);
    auto [tgt_patches, tgt_hv] = hash_patches(target.pixels);

    auto row = [&](const Tensor &mat, int64_t r) {
        return tensor::slice(mat, 0, r, 1).reshaped({dim});
    };
    std::vector<Tensor> src_rows, tgt_rows;
    for (int64_t r = 0; r < per_side * per_side; r++) {
        src_rows.push_back(row(src_hv, r));
        tgt_rows.push_back(row(tgt_hv, r));
    }
    Tensor src_style = vsa::bundleMajority(src_rows);
    Tensor tgt_style = vsa::bundleMajority(tgt_rows);
    vsa::Codebook target_book(tgt_hv.clone());

    // Translate: unbind source style, bind target style, synthesize
    // from the nearest target patch.
    Tensor output({1, size, size});
    int preserved = 0;
    for (int64_t r = 0; r < per_side * per_side; r++) {
        Tensor content =
            vsa::unbind(src_rows[static_cast<size_t>(r)], src_style);
        Tensor translated = vsa::bind(content, tgt_style);
        int64_t match = target_book.cleanup(translated).index;

        int64_t pr = r / per_side, pc = r % per_side;
        for (int64_t y = 0; y < patch; y++) {
            for (int64_t x = 0; x < patch; x++) {
                output(0, pr * patch + y, pc * patch + x) =
                    tgt_patches(match, y * patch + x);
            }
        }
        // Semantic check at patch centers.
        auto label_at = [&](const data::SemanticImage &img,
                            int64_t rr) {
            int64_t cy = (rr / per_side) * patch + patch / 2;
            int64_t cx = (rr % per_side) * patch + patch / 2;
            return img.labels[static_cast<size_t>(cy * size + cx)];
        };
        if (label_at(source, r) == label_at(target, match))
            preserved++;
    }

    std::cout << "translated (checker texture, stripe-scene "
                 "semantics):\n";
    printImage(output, size);

    std::cout << "semantic consistency: "
              << util::percentStr(static_cast<double>(preserved) /
                                  (per_side * per_side))
              << " of patches kept their class across translation\n";
    return 0;
}
