/**
 * @file
 * Extending the suite: characterize your own neuro-symbolic workload.
 *
 * The paper's outlook calls for benchmarking frameworks that let
 * researchers drop in new neuro-symbolic models and obtain the same
 * characterization. This example implements a minimal custom hybrid
 * (a ConvNet digit-ish classifier whose outputs feed a fuzzy rule
 * checker) against the core::Workload interface, registers it, and
 * runs the full report stack over it.
 */

#include <iostream>

#include "core/profiler.hh"
#include "core/report.hh"
#include "core/workload.hh"
#include "logic/fuzzy.hh"
#include "nn/layers.hh"
#include "sim/device.hh"
#include "sim/projection.hh"
#include "tensor/ops.hh"
#include "util/format.hh"
#include "util/rng.hh"

namespace
{

using namespace nsbench;
using tensor::Tensor;

/**
 * A toy Neuro|Symbolic pipeline: perceive a batch of random images,
 * then symbolically check the fuzzy axiom "every image is exactly one
 * class" over the predicted distributions.
 */
class MyHybridWorkload : public core::Workload
{
  public:
    std::string name() const override { return "MyHybrid"; }
    core::Paradigm
    paradigm() const override
    {
        return core::Paradigm::NeuroPipeSymbolic;
    }
    std::string
    taskDescription() const override
    {
        return "toy perception + fuzzy consistency checking";
    }

    void
    setUp(uint64_t seed) override
    {
        rng_ = std::make_unique<util::Rng>(seed);
        net_ = nn::makeConvNet(1, 16, {{8, 3, 1, 1, true}}, {32, 10},
                               *rng_);
        batch_ = Tensor::rand({8, 1, 16, 16}, *rng_);
    }

    double
    run() override
    {
        Tensor probs;
        {
            core::PhaseScope neural(core::Phase::Neural,
                                    "myhybrid/perception");
            probs = net_->forward(tensor::transfer(batch_, "h2d"));
        }
        double sat = 0.0;
        {
            core::PhaseScope symbolic(core::Phase::Symbolic,
                                      "myhybrid/rules");
            // Fuzzy "exactly one class": exists a confident class and
            // the distribution is consistent (sums to one by
            // construction, so check confidence).
            Tensor confidence = tensor::maxAxis(probs, 1);
            sat = logic::pMean(
                std::span<const float>(confidence.data()), 4.0f);
        }
        return sat;
    }

    core::OpGraph
    opGraph() const override
    {
        core::OpGraph g;
        auto in = g.addNode("images", core::Phase::Untagged);
        auto net = g.addNode("myhybrid/perception",
                             core::Phase::Neural);
        auto rules = g.addNode("myhybrid/rules",
                               core::Phase::Symbolic);
        auto out = g.addNode("satisfaction", core::Phase::Untagged);
        g.addEdge(in, net);
        g.addEdge(net, rules);
        g.addEdge(rules, out);
        return g;
    }

    uint64_t
    storageBytes() const override
    {
        return net_ ? net_->paramBytes() : 0;
    }

  private:
    std::unique_ptr<util::Rng> rng_;
    std::unique_ptr<nn::Sequential> net_;
    Tensor batch_;
};

} // namespace

int
main()
{
    using namespace nsbench;

    // Register the custom workload like any built-in one.
    core::WorkloadRegistry::global().add("MyHybrid", [] {
        return std::make_unique<MyHybridWorkload>();
    });

    auto workload = core::WorkloadRegistry::global().create("MyHybrid");
    workload->setUp(1);
    auto &prof = core::globalProfiler();
    prof.reset();
    double score = workload->run();

    std::cout << "custom workload '" << workload->name()
              << "' score: " << util::fixedStr(score, 3) << "\n\n";
    core::phaseBreakdownTable(prof).print(std::cout);
    std::cout << "\n";
    core::topOpsTable(prof, 6).print(std::cout);

    auto proj = sim::projectProfile(sim::rtx2080ti(), prof);
    std::cout << "\nRTX 2080 Ti projection: "
              << util::humanSeconds(proj.totalSeconds) << " (symbolic "
              << util::percentStr(proj.symbolicFraction()) << ")\n";

    auto graph = workload->opGraph();
    for (core::NodeId id = 0; id < graph.size(); id++) {
        graph.node(id).seconds =
            prof.regionTotals(graph.node(id).name).seconds;
    }
    std::cout << "critical-path symbolic share: "
              << util::percentStr(graph.symbolicCriticalFraction())
              << "\n";
    return 0;
}
