/**
 * @file
 * Quickstart: profile one neuro-symbolic workload end-to-end.
 *
 * Demonstrates the core public API: the workload registry, the
 * instrumenting profiler, the report builders, and the analytical
 * device projection.
 *
 * Usage: quickstart [workload-name]   (default: NVSA)
 */

#include <iostream>

#include "core/profiler.hh"
#include "core/report.hh"
#include "core/workload.hh"
#include "sim/device.hh"
#include "sim/projection.hh"
#include "util/format.hh"
#include "workloads/register.hh"

int
main(int argc, char **argv)
{
    using namespace nsbench;

    // 1. Pick a workload from the registry.
    workloads::registerAllWorkloads();
    auto &registry = core::WorkloadRegistry::global();
    std::string name = argc > 1 ? argv[1] : "NVSA";
    if (!registry.contains(name)) {
        std::cerr << "unknown workload '" << name << "'; choose from:";
        for (const auto &n : registry.names())
            std::cerr << " " << n;
        std::cerr << "\n";
        return 1;
    }
    auto workload = registry.create(name);

    // 2. Build its model + synthetic dataset, then run one profiled
    //    inference episode. Every tensor / VSA / logic operation
    //    reports to the global profiler.
    workload->setUp(/*seed=*/42);
    auto &prof = core::globalProfiler();
    prof.reset();
    double score = workload->run();

    // 3. Inspect the characterization.
    std::cout << "workload:  " << workload->name() << " ("
              << core::paradigmName(workload->paradigm()) << ")\n"
              << "task:      " << workload->taskDescription() << "\n"
              << "score:     " << util::fixedStr(score, 3) << "\n"
              << "storage:   "
              << util::humanBytes(workload->storageBytes()) << "\n\n";

    std::cout << "--- phase breakdown (Fig. 2a view) ---\n";
    core::phaseBreakdownTable(prof).print(std::cout);

    std::cout << "\n--- top operators ---\n";
    core::topOpsTable(prof, 8).print(std::cout);

    std::cout << "\n--- per-category split of the symbolic phase "
                 "(Fig. 3a view) ---\n";
    core::categoryBreakdownTable(prof, core::Phase::Symbolic)
        .print(std::cout);

    // 4. Project the measured op stream onto modeled hardware.
    std::cout << "\n--- projected runtime across devices (Fig. 2b "
                 "view) ---\n";
    for (const auto &device : sim::allDevices()) {
        auto proj = sim::projectProfile(device, prof);
        std::cout << device.name << ": "
                  << util::humanSeconds(proj.totalSeconds)
                  << "  (symbolic "
                  << util::percentStr(proj.symbolicFraction()) << ")\n";
    }
    return 0;
}
