/**
 * @file
 * Raven's-Progressive-Matrices walkthrough: generate a puzzle, render
 * its panels, and watch the vector-symbolic machinery recover the
 * hidden rules and the answer.
 *
 * This example drives the library's VSA layer directly (codebooks,
 * fractional-power atoms, binding) rather than going through the
 * packaged NVSA workload, showing how the pieces compose.
 *
 * Usage: raven_solver [grid] [seed]
 */

#include <array>
#include <iostream>

#include "data/raven.hh"
#include "util/format.hh"
#include "util/rng.hh"
#include "vsa/codebook.hh"
#include "vsa/ops.hh"

namespace
{

using namespace nsbench;
using data::AttributeId;
using tensor::Tensor;

/** ASCII-art rendering of a panel image. */
void
printPanel(const Tensor &image)
{
    const char *shades = " .:-=+*#%@";
    int64_t hw = image.size(1);
    for (int64_t y = 0; y < hw; y += 2) {
        for (int64_t x = 0; x < hw; x++) {
            float v = image(0, y, x);
            int idx = std::min(9, static_cast<int>(v * 10));
            std::cout << shades[idx];
        }
        std::cout << "\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    int grid = argc > 1 ? std::atoi(argv[1]) : 2;
    uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

    data::RavenGenerator gen(grid, seed);
    data::RpmPuzzle puzzle = gen.generate();

    std::cout << "=== RPM puzzle (grid " << grid << "x" << grid
              << ", seed " << seed << ") ===\n\n";
    std::cout << "hidden rules:\n";
    for (size_t a = 0; a < data::numAttributes; a++) {
        std::cout << "  " << data::attributeName(data::allAttributes[a])
                  << ": " << puzzle.rules[a].str() << "\n";
    }

    std::cout << "\nfirst context panel:\n";
    printPanel(gen.render(puzzle.context[0]));

    // Recover each attribute's rule with exact symbolic values (this
    // example skips perception; see the NVSA workload for the full
    // neural pipeline).
    util::Rng rng(seed ^ 0xabcd);
    int predicted_values[data::numAttributes];
    std::cout << "\nrule recovery from context rows:\n";
    for (size_t a = 0; a < data::numAttributes; a++) {
        int domain =
            data::attributeDomain(data::allAttributes[a], grid);
        // Score every enumerable rule against rows 0 and 1.
        auto rules = data::enumerateRules(domain);
        const data::AttributeRule *best = nullptr;
        for (const auto &rule : rules) {
            bool fits = true;
            for (int row = 0; row < 2; row++) {
                int a1 = puzzle.context[static_cast<size_t>(row * 3)]
                             .values[a];
                int a2 =
                    puzzle.context[static_cast<size_t>(row * 3 + 1)]
                        .values[a];
                int a3 =
                    puzzle.context[static_cast<size_t>(row * 3 + 2)]
                        .values[a];
                if (!data::ruleHolds(rule, a1, a2, a3, domain)) {
                    fits = false;
                    break;
                }
            }
            if (fits) {
                best = &rule;
                break;
            }
        }
        int a7 = puzzle.context[6].values[a];
        int a8 = puzzle.context[7].values[a];
        predicted_values[a] =
            best ? data::applyRule(*best, a7, a8, domain) : a8;
        std::cout << "  "
                  << data::attributeName(data::allAttributes[a])
                  << ": recovered " << (best ? best->str() : "(none)")
                  << ", predicted answer value "
                  << predicted_values[a] << "\n";
    }

    // Verify the prediction in hypervector space: encode the
    // predicted attribute values as fractional-power atoms, bind them
    // into an object vector, and check every candidate's product
    // against it.
    int64_t dim = 1024;
    std::array<std::unique_ptr<vsa::Codebook>, data::numAttributes>
        books;
    for (size_t a = 0; a < data::numAttributes; a++) {
        int domain =
            data::attributeDomain(data::allAttributes[a], grid);
        Tensor base = vsa::unitaryVector(dim, rng);
        Tensor atoms({domain, dim});
        for (int v = 0; v < domain; v++) {
            Tensor atom = vsa::convPower(base, v + 1);
            for (int64_t i = 0; i < dim; i++)
                atoms(v, i) = atom(i);
        }
        books[a] = std::make_unique<vsa::Codebook>(std::move(atoms));
    }
    auto panel_vector = [&](const std::array<int, 4> &values) {
        Tensor bound = books[0]->atom(values[0]);
        for (size_t a = 1; a < data::numAttributes; a++) {
            bound = vsa::fftCircularConvolve(
                bound,
                books[a]->atom(values[static_cast<size_t>(a)]));
        }
        return bound;
    };

    Tensor predicted = panel_vector({predicted_values[0],
                                     predicted_values[1],
                                     predicted_values[2],
                                     predicted_values[3]});
    std::cout << "\ncandidate similarities in hypervector space:\n";
    int best_candidate = 0;
    float best_sim = -2.0f;
    for (size_t c = 0; c < puzzle.candidates.size(); c++) {
        Tensor cand = panel_vector(puzzle.candidates[c].values);
        float sim = vsa::cosineSimilarity(predicted, cand);
        std::cout << "  candidate " << c << ": "
                  << util::fixedStr(sim, 3)
                  << (static_cast<int>(c) == puzzle.answerIndex
                          ? "   <- ground truth"
                          : "")
                  << "\n";
        if (sim > best_sim) {
            best_sim = sim;
            best_candidate = static_cast<int>(c);
        }
    }

    std::cout << "\nchosen: candidate " << best_candidate << " — "
              << (best_candidate == puzzle.answerIndex ? "correct!"
                                                       : "wrong")
              << "\n";
    return best_candidate == puzzle.answerIndex ? 0 : 1;
}
