/**
 * @file
 * The `nsbench` command-line front end.
 *
 * Subcommands:
 *   list                      registered workloads
 *   devices                   modeled devices
 *   run <workload> [options]  profile one workload and print reports
 *   serve [options]           serve workloads under closed-loop load
 *   loadgen [options]         serve under an open-loop Poisson load
 *   route [options]           shard requests across TCP backends
 *
 * `serve` and `loadgen` start a batching inference server over
 * pre-warmed replicas, drive it with the built-in load generator for
 * a configured window, then drain gracefully and print the SLO
 * report (p50/p95/p99 latency, throughput, neural/symbolic split).
 * They share options; they differ only in the default discipline
 * (closed loop vs open loop, overridable with --open/--closed).
 *
 * Networking (docs/DESIGN.md §7h): `serve --listen [HOST:]PORT`
 * exposes the server over TCP instead of driving it in-process;
 * `serve|loadgen --connect HOST:PORT --workloads A,B` runs the same
 * load generator against a remote server; `route --listen PORT
 * --backends H:P,H:P` shards requests across several servers by
 * consistent hashing. All serving modes accept `--json PATH` for a
 * machine-readable result record.
 *
 * Options for `run`:
 *   --seed N       RNG seed (default 42)
 *   --runs N       repeat the profiled run N times (default 1)
 *   --threads N    width of the parallel runtime (default:
 *                  NSBENCH_THREADS env var, else hardware concurrency)
 *   --simd MODE    kernel backend: "scalar", "avx2" or "auto"
 *                  (default: NSBENCH_SIMD env var, else CPUID)
 *   --arena MODE   tensor allocator: "on" (size-classed arena) or
 *                  "off" (plain heap; default, or NSBENCH_ARENA env)
 *   --cache MODE   memoization: "on" enables the seed-invariant
 *                  precompute cache (and, for serve/loadgen, the
 *                  request-result cache); "off" disables both
 *                  (default: NSBENCH_CACHE env var, else off)
 *   --cache-mb N   byte budget per cache level, in MiB
 *   --csv          emit CSV instead of aligned tables
 *   --device NAME  also project the op stream onto one device
 *                  ("all" projects onto every modeled device)
 *   --pipeline[=D] run the episodes through the stage-pipelined
 *                  executor (inter-stage queue depth D, default 2)
 *                  instead of a serial loop, and report the measured
 *                  overlap speedup next to the sim::schedule
 *                  prediction; profiles over --runs episodes
 *                  (default 8 when --runs is 1)
 *
 * Resilience options for `serve`/`loadgen` (see docs/DESIGN.md §7f):
 *   --faults SPEC  arm deterministic failpoints, e.g.
 *                  "serve.worker.run=0.1@7"; overrides the
 *                  NSBENCH_FAILPOINTS environment variable
 *   --retries N    re-attempts for a failed run() (default 2)
 *   --retry-backoff-us N  first retry backoff; doubles per retry
 *   --shed-at F    shed with RejectedOverload at F fractional queue
 *                  occupancy (0 disables, the default)
 *   --no-stale     fail requests instead of serving a stale cached
 *                  score after the retries are exhausted
 *   --pipeline[=D] enable intra-replica stage pipelining on the
 *                  workers (queue depth D, default 2); staged
 *                  workloads overlap the coalesced executions of a
 *                  batch across their neural/symbolic stages
 */

#include <chrono>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cache/config.hh"
#include "cache/precompute.hh"
#include "core/profiler.hh"
#include "exec/pipeline.hh"
#include "common.hh"
#include "net/client.hh"
#include "net/router.hh"
#include "net/tcp_server.hh"
#include "serve/loadgen.hh"
#include "serve/presets.hh"
#include "serve/server.hh"
#include "core/report.hh"
#include "core/workload.hh"
#include "sim/device.hh"
#include "sim/projection.hh"
#include "tensor/alloc.hh"
#include "util/failpoint.hh"
#include "util/format.hh"
#include "util/simd.hh"
#include "util/stats.hh"
#include "util/threadpool.hh"
#include "util/timer.hh"
#include "workloads/register.hh"

namespace
{

using namespace nsbench;

int
usage()
{
    std::cerr
        << "usage: nsbench <command>\n"
           "  nsbench list\n"
           "  nsbench devices\n"
           "  nsbench run <workload> [--seed N] [--runs N]\n"
           "              [--threads N] [--simd scalar|avx2|auto]\n"
           "              [--arena on|off] [--cache on|off]\n"
           "              [--cache-mb N] [--csv]\n"
           "              [--device NAME|all] [--pipeline[=D]]\n"
           "  nsbench serve|loadgen [--workloads A,B,...]\n"
           "              [--listen [HOST:]PORT] (serve over TCP)\n"
           "              [--connect HOST:PORT] (drive a remote\n"
           "               server; needs --workloads)\n"
           "              [--json PATH]\n"
           "              [--workers N] [--max-batch N]\n"
           "              [--max-wait-us N] [--queue N]\n"
           "              [--model-seed N] [--no-coalesce]\n"
           "              [--cache on|off] [--cache-mb N]\n"
           "              [--preset serve|default]\n"
           "              [--open|--closed] [--rate HZ] [--clients N]\n"
           "              [--duration S] [--seed N]\n"
           "              [--seed-universe N] [--zipf S]\n"
           "              [--deadline-ms MS] [--mix A=W,B=W] [--csv]\n"
           "              [--faults SPEC] [--retries N]\n"
           "              [--retry-backoff-us N] [--shed-at F]\n"
           "              [--no-stale] [--pipeline[=D]]\n"
           "              [--target-sojourn-us N]\n"
           "              [--sojourn-grace-us N]\n"
           "  nsbench route --listen [HOST:]PORT\n"
           "              --backends HOST:PORT,HOST:PORT,...\n"
           "              [--duration S] [--json PATH] [--csv]\n"
           "              [--no-hedging] [--hedge-budget F]\n"
           "              [--hedge-min-delay-us N]\n"
           "              [--hedge-max-delay-us N]\n"
           "              [--breaker-error-rate F]\n"
           "              [--breaker-latency-factor F]\n"
           "              [--retry-down S]\n";
    return 2;
}

void
printTable(const util::Table &table, bool csv)
{
    if (csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
}

/**
 * Parses `--pipeline` / `--pipeline=D` into a queue depth (bare form
 * means 2); returns false when @p arg is some other option. Exits
 * with a usage error on a non-positive depth.
 */
bool
parsePipelineArg(const std::string &arg, int *depth)
{
    if (arg == "--pipeline") {
        *depth = 2;
        return true;
    }
    const std::string prefix = "--pipeline=";
    if (arg.rfind(prefix, 0) != 0)
        return false;
    *depth = std::atoi(arg.c_str() + prefix.size());
    if (*depth < 1) {
        std::cerr << "--pipeline depth must be positive\n";
        std::exit(2);
    }
    return true;
}

/** Handles --cache on|off; exits with usage error on anything else. */
bool
parseCacheMode(const std::string &mode)
{
    if (mode == "on") {
        cache::setEnabled(true);
        return true;
    }
    if (mode == "off") {
        cache::setEnabled(false);
        return false;
    }
    std::cerr << "--cache must be on or off\n";
    std::exit(2);
}

/** One-line summary of the precompute cache's residency. */
void
printPrecomputeLine()
{
    cache::PrecomputeStats stats =
        cache::PrecomputeCache::global().stats();
    std::cout << "precompute cache: "
              << util::humanBytes(stats.residentBytes)
              << " resident in " << stats.entries << " entr"
              << (stats.entries == 1 ? "y" : "ies") << " ("
              << stats.hits << " hit(s), " << stats.builds
              << " build(s), " << stats.evictions
              << " eviction(s))\n";
}

int
cmdList()
{
    auto &registry = core::WorkloadRegistry::global();
    util::Table table({"workload", "paradigm", "task"});
    for (const auto &name : registry.names()) {
        auto w = registry.create(name);
        table.addRow({w->name(),
                      std::string(core::paradigmName(w->paradigm())),
                      w->taskDescription()});
    }
    table.print(std::cout);
    return 0;
}

int
cmdDevices()
{
    util::Table table({"device", "peak GFLOP/s", "bandwidth GB/s",
                       "ridge FLOP/B", "launch us", "TDP W"});
    for (const auto &d : sim::allDevices()) {
        table.addRow({d.name, util::fixedStr(d.peakGflops, 0),
                      util::fixedStr(d.memBandwidthGBs, 1),
                      util::fixedStr(d.ridgeIntensity(), 1),
                      util::fixedStr(d.launchOverheadUs, 1),
                      util::fixedStr(d.tdpWatts, 0)});
    }
    table.print(std::cout);
    return 0;
}

/**
 * `nsbench run --pipeline`: executes the episode train seed..seed+N-1
 * both serially and through the stage-pipelined executor, prints the
 * per-stage breakdown and the measured-vs-predicted overlap speedup,
 * and exits 1 if the pipelined scores are not byte-identical to the
 * serial loop.
 */
int
runPipelinedReport(core::Workload &workload, uint64_t seed, int runs,
                   int depth, bool csv)
{
    // A single run is not a pipeline; default to a short episode
    // train when --runs was left at 1.
    int episodes = runs > 1 ? runs : 8;
    std::vector<uint64_t> seeds;
    seeds.reserve(static_cast<size_t>(episodes));
    for (int i = 0; i < episodes; i++)
        seeds.push_back(exec::episodeSeed(seed, i));

    util::WallTimer serial_timer;
    std::vector<double> serial =
        exec::runSerialEpisodes(workload, seeds);
    double serial_wall = serial_timer.elapsed();

    exec::PipelineOptions options;
    options.depth = depth;
    exec::PipelineResult piped =
        exec::runPipelined(workload, seeds, options);

    std::vector<double> stage_seconds;
    util::Table table({"stage", "phase", "busy", "per-episode",
                       "neural", "symbolic"});
    for (const exec::StageReport &stage : piped.stages) {
        stage_seconds.push_back(stage.busySeconds);
        table.addRow(
            {stage.name, std::string(core::phaseName(stage.phase)),
             util::humanSeconds(stage.busySeconds),
             util::humanSeconds(stage.busySeconds / episodes),
             util::humanSeconds(stage.neural.seconds),
             util::humanSeconds(stage.symbolic.seconds)});
    }
    double predicted = exec::predictedSpeedup(stage_seconds, episodes);
    bool identical =
        serial.size() == piped.scores.size() &&
        std::equal(serial.begin(), serial.end(), piped.scores.begin(),
                   [](double a, double b) {
                       return std::memcmp(&a, &b, sizeof a) == 0;
                   });

    if (!csv) {
        std::cout << "workload:  " << workload.name() << " ("
                  << core::paradigmName(workload.paradigm())
                  << ")\nepisodes:  " << episodes << " (seeds "
                  << seed << ".." << seed + episodes - 1
                  << ")\nstages:    " << workload.stageCount()
                  << "  queue depth " << depth << "\n\n";
    }
    printTable(table, csv);
    std::cout << "\nserial:    " << util::humanSeconds(serial_wall)
              << "   pipelined: "
              << util::humanSeconds(piped.wallSeconds) << "   ("
              << util::fixedStr(piped.wallSeconds > 0.0
                                    ? serial_wall / piped.wallSeconds
                                    : 1.0,
                                2)
              << "x end-to-end)\noverlap:   "
              << util::fixedStr(piped.overlapSpeedup(), 2)
              << "x measured   " << util::fixedStr(predicted, 2)
              << "x predicted (sim::schedule)\nidentity:  "
              << (identical
                      ? "pipelined scores byte-identical to serial"
                      : "MISMATCH: pipelined scores differ from "
                        "serial")
              << "\n";
    return identical ? 0 : 1;
}

int
cmdRun(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    std::string name = argv[0];
    uint64_t seed = 42;
    int runs = 1;
    int pipeline_depth = 0;
    bool csv = false;
    std::string device_name;

    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--seed") {
            seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--runs") {
            runs = std::atoi(next());
        } else if (arg == "--threads") {
            int threads = std::atoi(next());
            if (threads < 1) {
                std::cerr << "--threads must be positive\n";
                return 2;
            }
            util::ThreadPool::setGlobalThreads(threads);
        } else if (arg == "--simd") {
            std::string mode = next();
            if (mode == "scalar") {
                util::simd::setBackend(util::simd::Backend::Scalar);
            } else if (mode == "avx2") {
                if (!util::simd::avx2Supported()) {
                    std::cerr << "--simd avx2: this host has no "
                                 "AVX2 support\n";
                    return 2;
                }
                util::simd::setBackend(util::simd::Backend::Avx2);
            } else if (mode == "auto") {
                util::simd::resetBackend();
            } else {
                std::cerr << "--simd must be scalar, avx2 or auto\n";
                return 2;
            }
        } else if (arg == "--arena") {
            std::string mode = next();
            if (mode == "on") {
                tensor::setAllocator(tensor::AllocatorKind::Arena);
            } else if (mode == "off") {
                tensor::setAllocator(tensor::AllocatorKind::Heap);
            } else {
                std::cerr << "--arena must be on or off\n";
                return 2;
            }
        } else if (arg == "--cache") {
            parseCacheMode(next());
        } else if (arg == "--cache-mb") {
            uint64_t mb = std::strtoull(next(), nullptr, 10);
            cache::PrecomputeCache::global().setMaxBytes(mb << 20);
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--device") {
            device_name = next();
        } else if (parsePipelineArg(arg, &pipeline_depth)) {
            // depth captured by the parser
        } else {
            std::cerr << "unknown option " << arg << "\n";
            return usage();
        }
    }

    auto &registry = core::WorkloadRegistry::global();
    if (!registry.contains(name)) {
        std::cerr << "unknown workload '" << name
                  << "'; try `nsbench list`\n";
        return 1;
    }
    if (runs < 1) {
        std::cerr << "--runs must be positive\n";
        return 2;
    }

    auto workload = registry.create(name);
    workload->setUp(seed);

    if (pipeline_depth > 0)
        return runPipelinedReport(*workload, seed, runs,
                                  pipeline_depth, csv);

    auto &prof = core::globalProfiler();
    prof.reset();
    util::RunningStat wall;
    double score = 0.0;
    for (int r = 0; r < runs; r++) {
        util::WallTimer timer;
        score = workload->run();
        wall.add(timer.elapsed());
    }

    if (!csv) {
        std::cout << "workload: " << workload->name() << " ("
                  << core::paradigmName(workload->paradigm())
                  << ")\ntask:     " << workload->taskDescription()
                  << "\nscore:    " << util::fixedStr(score, 3)
                  << "\nwall:     " << util::humanSeconds(wall.mean())
                  << " mean over " << runs << " run(s)"
                  << (runs > 1 ? " (stddev " +
                                     util::humanSeconds(wall.stddev()) +
                                     ")"
                               : "")
                  << "\nstorage:  "
                  << util::humanBytes(workload->storageBytes())
                  << "\nthreads:  " << util::ThreadPool::globalThreads()
                  << "\nsimd:     " << util::simd::activeBackendName()
                  << "\narena:    " << tensor::activeAllocatorName()
                  << "\ncache:    "
                  << (cache::enabled() ? "on" : "off") << "\n\n";
    }

    printTable(core::phaseBreakdownTable(prof), csv);
    std::cout << "\n";
    printTable(core::regionTable(prof), csv);
    std::cout << "\n";
    printTable(core::topOpsTable(prof, 12), csv);
    std::cout << "\n";
    printTable(core::memoryTable(prof), csv);
    if (!csv && cache::enabled()) {
        // Precompute residency lives outside the logical-liveness
        // peaks above; report it alongside the memory table.
        std::cout << "\n";
        printPrecomputeLine();
    }
    if (!prof.sparsityRecords().empty()) {
        std::cout << "\n";
        printTable(core::sparsityTable(prof), csv);
    }

    auto project = [&](const sim::DeviceSpec &device) {
        auto proj = sim::projectProfile(device, prof);
        std::cout << device.name << ": "
                  << util::humanSeconds(proj.totalSeconds)
                  << " projected (neural "
                  << util::percentStr(proj.neuralFraction())
                  << ", symbolic "
                  << util::percentStr(proj.symbolicFraction())
                  << ")\n";
    };
    if (!device_name.empty()) {
        std::cout << "\n";
        bool found = false;
        for (const auto &d : sim::allDevices()) {
            if (device_name == "all" || d.name == device_name) {
                project(d);
                found = true;
            }
        }
        if (!found) {
            std::cerr << "unknown device '" << device_name
                      << "'; try `nsbench devices`\n";
            return 1;
        }
    }
    return 0;
}

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> parts;
    std::stringstream stream(text);
    std::string part;
    while (std::getline(stream, part, ','))
        if (!part.empty())
            parts.push_back(part);
    return parts;
}

/**
 * Everything `serve`, `loadgen` and `route` parse — one struct, one
 * parser, one source of defaults for the whole serving surface
 * (in-process, TCP front end, remote load generation, router).
 */
struct ServeCli
{
    serve::ServerOptions server;
    serve::LoadgenOptions load;
    bool csv = false;
    bool usePreset = true;
    std::string listen;   ///< --listen [HOST:]PORT (serve / route).
    std::string connect;  ///< --connect HOST:PORT (remote loadgen).
    std::vector<std::string> backends; ///< --backends (route only).
    std::string jsonPath; ///< --json PATH (bench-style emission).
    /** Router tail-tolerance knobs (route only); listen/backends
     *  are filled from the fields above by cmdRoute. */
    net::RouterOptions router;

    ServeCli()
    {
        server.workloads = {"LNN", "LTN", "NLM"};
        // Both cache levels follow NSBENCH_CACHE unless --cache says
        // otherwise.
        server.resultCache = cache::enabled();
    }
};

/** Splits "[HOST:]PORT"; exits with a usage error on a bad port. */
net::FrameServerOptions
parseListenSpec(const std::string &spec)
{
    net::FrameServerOptions options;
    std::string port_part = spec;
    size_t colon = spec.rfind(':');
    if (colon != std::string::npos) {
        options.host = spec.substr(0, colon);
        port_part = spec.substr(colon + 1);
    }
    int port = std::atoi(port_part.c_str());
    if (port < 1 || port > 65535) {
        std::cerr << "--listen needs [HOST:]PORT with port 1..65535\n";
        std::exit(2);
    }
    options.port = static_cast<uint16_t>(port);
    return options;
}

/** Splits "HOST:PORT"; exits with a usage error on nonsense. */
net::ClientOptions
parseConnectSpec(const std::string &spec)
{
    net::ClientOptions options;
    size_t colon = spec.rfind(':');
    int port = colon == std::string::npos
                   ? 0
                   : std::atoi(spec.c_str() + colon + 1);
    if (colon == std::string::npos || colon == 0 || port < 1 ||
        port > 65535) {
        std::cerr << "--connect needs HOST:PORT\n";
        std::exit(2);
    }
    options.host = spec.substr(0, colon);
    options.port = static_cast<uint16_t>(port);
    return options;
}

/**
 * Parses the shared serve/loadgen/route option set into @p cli.
 * @return -1 on success, else the exit code to return.
 */
int
parseServeArgs(int argc, char **argv, ServeCli *cli)
{
    serve::ServerOptions &server_options = cli->server;
    serve::LoadgenOptions &load_options = cli->load;

    for (int i = 0; i < argc; i++) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--workloads") {
            server_options.workloads = splitList(next());
        } else if (arg == "--workers") {
            server_options.workers = std::atoi(next());
        } else if (arg == "--max-batch") {
            server_options.maxBatch = std::atoi(next());
        } else if (arg == "--max-wait-us") {
            server_options.maxWaitUs = std::atoll(next());
        } else if (arg == "--queue") {
            server_options.queueCapacity =
                static_cast<size_t>(std::atoll(next()));
        } else if (arg == "--model-seed") {
            server_options.modelSeed =
                std::strtoull(next(), nullptr, 10);
        } else if (arg == "--no-coalesce") {
            server_options.coalesce = false;
        } else if (arg == "--cache") {
            server_options.resultCache = parseCacheMode(next());
        } else if (arg == "--cache-mb") {
            uint64_t mb = std::strtoull(next(), nullptr, 10);
            server_options.cacheBytes = mb << 20;
            cache::PrecomputeCache::global().setMaxBytes(mb << 20);
        } else if (arg == "--preset") {
            std::string mode = next();
            if (mode == "serve") {
                cli->usePreset = true;
            } else if (mode == "default") {
                cli->usePreset = false;
            } else {
                std::cerr << "--preset must be serve or default\n";
                return 2;
            }
        } else if (arg == "--open") {
            load_options.openLoop = true;
        } else if (arg == "--closed") {
            load_options.openLoop = false;
        } else if (arg == "--rate") {
            load_options.rateHz = std::atof(next());
        } else if (arg == "--clients") {
            load_options.clients = std::atoi(next());
        } else if (arg == "--duration") {
            load_options.durationSeconds = std::atof(next());
        } else if (arg == "--seed") {
            load_options.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--seed-universe") {
            load_options.seedUniverse =
                std::strtoull(next(), nullptr, 10);
        } else if (arg == "--zipf") {
            load_options.zipfExponent = std::atof(next());
        } else if (arg == "--deadline-ms") {
            load_options.deadlineMs = std::atof(next());
        } else if (arg == "--mix") {
            load_options.mix.clear();
            for (const auto &entry : splitList(next())) {
                auto eq = entry.find('=');
                std::string name = entry.substr(0, eq);
                double weight =
                    eq == std::string::npos
                        ? 1.0
                        : std::atof(entry.substr(eq + 1).c_str());
                load_options.mix.emplace_back(name, weight);
            }
        } else if (arg == "--threads") {
            int threads = std::atoi(next());
            if (threads < 1) {
                std::cerr << "--threads must be positive\n";
                return 2;
            }
            util::ThreadPool::setGlobalThreads(threads);
        } else if (arg == "--faults") {
            std::string spec = next();
            std::string error = util::failpoints::configure(spec);
            if (!error.empty()) {
                std::cerr << "--faults: " << error << "\n";
                return 2;
            }
        } else if (arg == "--retries") {
            server_options.maxRetries = std::atoi(next());
            if (server_options.maxRetries < 0) {
                std::cerr << "--retries must be >= 0\n";
                return 2;
            }
        } else if (arg == "--retry-backoff-us") {
            server_options.retryBackoffUs = std::atoll(next());
            if (server_options.retryBackoffUs < 0) {
                std::cerr << "--retry-backoff-us must be >= 0\n";
                return 2;
            }
        } else if (arg == "--shed-at") {
            server_options.shedAtOccupancy = std::atof(next());
            if (server_options.shedAtOccupancy < 0.0 ||
                server_options.shedAtOccupancy > 1.0) {
                std::cerr << "--shed-at must be in [0, 1]\n";
                return 2;
            }
        } else if (arg == "--no-stale") {
            server_options.staleFallback = false;
        } else if (arg == "--target-sojourn-us") {
            server_options.targetSojournUs = std::atoll(next());
            if (server_options.targetSojournUs < 0) {
                std::cerr << "--target-sojourn-us must be >= 0\n";
                return 2;
            }
        } else if (arg == "--sojourn-grace-us") {
            server_options.sojournGraceUs = std::atoll(next());
            if (server_options.sojournGraceUs < 0) {
                std::cerr << "--sojourn-grace-us must be >= 0\n";
                return 2;
            }
        } else if (arg == "--no-hedging") {
            cli->router.hedging = false;
        } else if (arg == "--hedge-budget") {
            cli->router.hedgeBudget = std::atof(next());
            if (cli->router.hedgeBudget < 0.0 ||
                cli->router.hedgeBudget > 1.0) {
                std::cerr << "--hedge-budget must be in [0, 1]\n";
                return 2;
            }
        } else if (arg == "--hedge-min-delay-us") {
            long long us = std::atoll(next());
            if (us <= 0) {
                std::cerr << "--hedge-min-delay-us must be "
                             "positive\n";
                return 2;
            }
            cli->router.hedgeMinDelaySeconds =
                static_cast<double>(us) * 1e-6;
        } else if (arg == "--hedge-max-delay-us") {
            long long us = std::atoll(next());
            if (us <= 0) {
                std::cerr << "--hedge-max-delay-us must be "
                             "positive\n";
                return 2;
            }
            cli->router.hedgeMaxDelaySeconds =
                static_cast<double>(us) * 1e-6;
        } else if (arg == "--breaker-error-rate") {
            cli->router.breaker.errorThreshold = std::atof(next());
            if (cli->router.breaker.errorThreshold <= 0.0 ||
                cli->router.breaker.errorThreshold > 1.0) {
                std::cerr
                    << "--breaker-error-rate must be in (0, 1]\n";
                return 2;
            }
        } else if (arg == "--breaker-latency-factor") {
            cli->router.breaker.latencyFactor = std::atof(next());
            if (cli->router.breaker.latencyFactor <= 1.0) {
                std::cerr
                    << "--breaker-latency-factor must be > 1\n";
                return 2;
            }
        } else if (arg == "--retry-down") {
            cli->router.retryDownSeconds = std::atof(next());
            if (cli->router.retryDownSeconds <= 0.0) {
                std::cerr << "--retry-down must be positive\n";
                return 2;
            }
        } else if (parsePipelineArg(arg,
                                    &server_options.pipelineDepth)) {
            // depth captured by the parser
        } else if (arg == "--listen") {
            cli->listen = next();
        } else if (arg == "--connect") {
            cli->connect = next();
        } else if (arg == "--backends") {
            cli->backends = splitList(next());
        } else if (arg == "--json") {
            cli->jsonPath = next();
        } else if (arg.rfind("--json=", 0) == 0) {
            cli->jsonPath = arg.substr(7);
        } else if (arg == "--csv") {
            cli->csv = true;
        } else {
            std::cerr << "unknown option " << arg << "\n";
            return usage();
        }
    }
    return -1;
}

/** Workload-list validation, shared by every serving mode. */
int
validateWorkloads(const std::vector<std::string> &names)
{
    auto &registry = core::WorkloadRegistry::global();
    for (const auto &name : names) {
        if (!registry.contains(name)) {
            std::cerr << "unknown workload '" << name
                      << "'; try `nsbench list`\n";
            return 1;
        }
    }
    if (names.empty()) {
        std::cerr << "--workloads must name at least one workload\n";
        return 2;
    }
    return -1;
}

/** Load-discipline validation (local and remote load generation). */
int
validateLoadOptions(const serve::LoadgenOptions &load_options)
{
    if (load_options.durationSeconds <= 0.0) {
        std::cerr << "--duration must be positive\n";
        return 2;
    }
    if (!load_options.openLoop && load_options.clients < 1) {
        std::cerr << "--clients must be positive\n";
        return 2;
    }
    if (load_options.openLoop && load_options.rateHz <= 0.0) {
        std::cerr << "--rate must be positive\n";
        return 2;
    }
    return -1;
}

/** Prints the armed-failpoints panel: per site, fires/evaluations
 *  plus the injected-delay tally when the spec carried ~DELAY. */
void
printFailpointsLine()
{
    if (!util::failpoints::armed())
        return;
    std::cout << "failpoints:";
    for (const auto &[site, s] : util::failpoints::stats()) {
        std::cout << " " << site << "=" << s.fires << "/"
                  << s.evaluations;
        if (s.delays > 0)
            std::cout << " (" << s.delays << " delayed, "
                      << s.delayedUs << "us injected)";
    }
    std::cout << "\n";
}

/** Prints the shared end-of-window load summary. */
void
printLoadReport(const serve::LoadgenReport &report)
{
    std::cout << "\noffered:  "
              << util::fixedStr(report.offeredRate, 1)
              << " req/s\nserved:   "
              << util::fixedStr(report.throughput(), 1)
              << " req/s\nsubmitted " << report.submitted
              << ", completed " << report.completed << ", expired "
              << report.expired << ", failed " << report.failed
              << ", rejected " << report.rejected << " over "
              << util::humanSeconds(report.wallSeconds) << "\n";
}

/** The counters every mode's --json payload shares. */
std::string
loadReportJson(const std::string &mode,
               const serve::LoadgenReport &report)
{
    std::ostringstream json;
    json << "\"mode\":\"" << mode
         << "\",\"submitted\":" << report.submitted
         << ",\"completed\":" << report.completed
         << ",\"expired\":" << report.expired
         << ",\"failed\":" << report.failed
         << ",\"rejected\":" << report.rejected
         << ",\"offered_rate\":" << report.offeredRate
         << ",\"throughput\":" << report.throughput();
    return json.str();
}

/**
 * `serve --listen`: exposes the server over TCP for the configured
 * window (--duration; the loadgen default applies) and prints the
 * transport + serving metrics when the window closes.
 */
int
runListenServe(ServeCli &cli, int argc, char **argv)
{
    net::FrameServerOptions bind = parseListenSpec(cli.listen);
    if (cli.load.durationSeconds <= 0.0) {
        std::cerr << "--duration must be positive\n";
        return 2;
    }

    serve::Server server(std::move(cli.server));
    net::TcpServer tcp(server, bind);
    if (!cli.csv)
        std::cout << "listening on " << bind.host << ":"
                  << tcp.port() << " for "
                  << util::fixedStr(cli.load.durationSeconds, 1)
                  << "s\n"
                  << std::flush;

    std::this_thread::sleep_for(std::chrono::duration<double>(
        cli.load.durationSeconds));

    tcp.shutdown();
    server.shutdown();

    printTable(server.metrics().table(), cli.csv);
    if (server.metrics().hasResilienceEvents()) {
        if (!cli.csv)
            std::cout << "\n";
        printTable(server.metrics().resilienceTable(), cli.csv);
    }
    if (!cli.csv)
        std::cout << "\n";
    printTable(server.metrics().netTable(), cli.csv);
    if (!cli.csv)
        printFailpointsLine();

    serve::NetStats net_stats = server.metrics().netStats();
    serve::WorkloadMetrics totals = server.metrics().total();
    std::ostringstream json;
    json << "{\"mode\":\"serve_listen\",\"completed\":"
         << totals.completed
         << ",\"conns\":" << net_stats.connectionsAccepted
         << ",\"frames_in\":" << net_stats.framesIn
         << ",\"frames_out\":" << net_stats.framesOut
         << ",\"malformed\":" << net_stats.malformedFrames
         << ",\"canceled\":" << totals.canceled
         << ",\"soj_shed\":" << totals.sojournSheds << "}";
    bench::writeBenchJson(argc, argv, json.str());
    return 0;
}

/**
 * `serve|loadgen --connect`: drives a remote server with the stock
 * load generator over the wire protocol. Exits 1 when nothing
 * completed, so scripted smoke tests gate on the exit code.
 */
int
runRemoteLoadgen(ServeCli &cli, int argc, char **argv,
                 bool workloads_given)
{
    if (!workloads_given) {
        std::cerr << "--connect needs an explicit --workloads list "
                     "(a remote client cannot query the server's "
                     "registry)\n";
        return 2;
    }
    int rc = validateWorkloads(cli.server.workloads);
    if (rc >= 0)
        return rc;
    rc = validateLoadOptions(cli.load);
    if (rc >= 0)
        return rc;

    net::ClientOptions remote = parseConnectSpec(cli.connect);
    remote.modelSeed = 0; // Accept the server's model snapshot.
    net::Client client(remote);
    net::RemoteTarget target(client, cli.server.workloads);

    if (!cli.csv)
        std::cout << "driving " << remote.host << ":" << remote.port
                  << " ("
                  << (cli.load.openLoop ? "open loop" : "closed loop")
                  << ") for "
                  << util::fixedStr(cli.load.durationSeconds, 1)
                  << "s\n"
                  << std::flush;

    serve::LoadgenReport report = serve::runLoadgen(target, cli.load);
    client.close();

    printLoadReport(report);
    net::ClientStats stats = client.stats();
    if (!cli.csv) {
        std::cout << "transport: " << stats.connects
                  << " connect(s), " << stats.connectFailures
                  << " connect failure(s), " << stats.sent
                  << " sent, " << stats.received << " received, "
                  << stats.disconnects << " disconnect(s), "
                  << stats.orphaned << " orphaned, "
                  << stats.cancelsSent << " cancel(s), "
                  << stats.callTimeouts << " call timeout(s)\n";
        printFailpointsLine();
    }

    std::ostringstream json;
    json << "{" << loadReportJson("loadgen_remote", report)
         << ",\"connects\":" << stats.connects
         << ",\"disconnects\":" << stats.disconnects
         << ",\"orphaned\":" << stats.orphaned
         << ",\"cancels\":" << stats.cancelsSent
         << ",\"call_timeouts\":" << stats.callTimeouts << "}";
    bench::writeBenchJson(argc, argv, json.str());
    return report.completed > 0 ? 0 : 1;
}

int
cmdServe(int argc, char **argv, bool open_loop)
{
    ServeCli cli;
    cli.load.openLoop = open_loop;
    int rc = parseServeArgs(argc, argv, &cli);
    if (rc >= 0)
        return rc;
    bool workloads_given = false;
    for (int i = 0; i < argc; i++)
        if (std::string(argv[i]) == "--workloads")
            workloads_given = true;
    if (!cli.listen.empty() && !cli.connect.empty()) {
        std::cerr << "--listen and --connect are exclusive\n";
        return 2;
    }
    if (!cli.backends.empty()) {
        std::cerr << "--backends only applies to `nsbench route`\n";
        return 2;
    }
    if (cli.usePreset)
        cli.server.factory = serve::serveFactory;

    if (!cli.connect.empty())
        return runRemoteLoadgen(cli, argc, argv, workloads_given);

    rc = validateWorkloads(cli.server.workloads);
    if (rc >= 0)
        return rc;
    if (cli.server.workers < 1) {
        std::cerr << "--workers must be positive\n";
        return 2;
    }
    if (!cli.listen.empty())
        return runListenServe(cli, argc, argv);
    rc = validateLoadOptions(cli.load);
    if (rc >= 0)
        return rc;

    serve::ServerOptions &server_options = cli.server;
    serve::LoadgenOptions &load_options = cli.load;
    bool csv = cli.csv;

    if (!csv) {
        std::cout << "serving:  ";
        for (size_t i = 0; i < server_options.workloads.size(); i++)
            std::cout << (i ? "," : "")
                      << server_options.workloads[i];
        std::cout << "\nworkers:  " << server_options.workers
                  << "  max-batch " << server_options.maxBatch
                  << "  max-wait "
                  << server_options.maxWaitUs << "us  queue "
                  << server_options.queueCapacity << "  coalesce "
                  << (server_options.coalesce ? "on" : "off")
                  << "  cache "
                  << (server_options.resultCache ? "on" : "off");
        if (server_options.pipelineDepth > 0)
            std::cout << "  pipeline depth "
                      << server_options.pipelineDepth;
        std::cout << "\ndriving:  "
                  << (load_options.openLoop ? "open loop" : "closed loop");
        if (load_options.openLoop)
            std::cout << " at " << load_options.rateHz << " req/s";
        else
            std::cout << " with " << load_options.clients
                      << " client(s)";
        std::cout << " for "
                  << util::fixedStr(load_options.durationSeconds, 1)
                  << "s\n\n"
                  << std::flush;
    }

    serve::Server server(std::move(server_options));
    serve::LoadgenReport report =
        serve::runLoadgen(server, load_options);
    server.shutdown();

    printTable(server.metrics().table(), csv);
    if (server.metrics().hasResilienceEvents()) {
        if (!csv)
            std::cout << "\n";
        printTable(server.metrics().resilienceTable(), csv);
    }
    {
        serve::WorkloadMetrics totals = server.metrics().total();
        std::ostringstream json;
        json << "{"
             << loadReportJson(load_options.openLoop ? "loadgen"
                                                     : "serve",
                               report)
             << ",\"p50_ms\":" << totals.latency.p50() * 1e3
             << ",\"p95_ms\":" << totals.latency.p95() * 1e3
             << ",\"p99_ms\":" << totals.latency.p99() * 1e3 << "}";
        bench::writeBenchJson(argc, argv, json.str());
    }
    if (!csv) {
        printLoadReport(report);
        printFailpointsLine();
        if (const cache::ResultCache *rc = server.resultCache()) {
            cache::ResultCacheStats stats = rc->stats();
            std::cout << "result cache: " << stats.hits
                      << " hit(s), " << stats.misses << " miss(es), "
                      << stats.evictions << " eviction(s), "
                      << util::humanBytes(stats.bytes) << " in "
                      << stats.entries << " entr"
                      << (stats.entries == 1 ? "y" : "ies") << "\n";
        }
        if (cache::enabled())
            printPrecomputeLine();
    }
    return 0;
}

/**
 * `nsbench route --listen [HOST:]PORT --backends H:P,...`: runs the
 * sharded consistent-hashing router in front of N `serve --listen`
 * processes for the configured window.
 */
int
cmdRoute(int argc, char **argv)
{
    ServeCli cli;
    int rc = parseServeArgs(argc, argv, &cli);
    if (rc >= 0)
        return rc;
    if (cli.listen.empty() || cli.backends.empty()) {
        std::cerr << "route needs --listen [HOST:]PORT and "
                     "--backends HOST:PORT,...\n";
        return 2;
    }
    if (cli.load.durationSeconds <= 0.0) {
        std::cerr << "--duration must be positive\n";
        return 2;
    }
    if (cli.router.hedgeMinDelaySeconds >
        cli.router.hedgeMaxDelaySeconds) {
        std::cerr << "--hedge-min-delay-us must not exceed "
                     "--hedge-max-delay-us\n";
        return 2;
    }

    net::RouterOptions options = cli.router;
    options.listen = parseListenSpec(cli.listen);
    options.backends = cli.backends;
    net::Router router(options);
    if (!cli.csv) {
        std::cout << "routing " << options.listen.host << ":"
                  << router.port() << " -> ";
        for (size_t i = 0; i < cli.backends.size(); i++)
            std::cout << (i ? "," : "") << cli.backends[i];
        std::cout << " for "
                  << util::fixedStr(cli.load.durationSeconds, 1)
                  << "s\n"
                  << std::flush;
    }

    std::this_thread::sleep_for(std::chrono::duration<double>(
        cli.load.durationSeconds));
    router.shutdown();

    if (router.metrics().total().offered > 0) {
        printTable(router.metrics().table(), cli.csv);
        if (!cli.csv)
            std::cout << "\n";
    }
    printTable(router.backendTable(), cli.csv);
    if (!cli.csv)
        std::cout << "\n";
    printTable(router.metrics().netTable(), cli.csv);

    net::HedgeStats hedges = router.hedgeStats();
    if (!cli.csv) {
        std::cout << "hedging:  "
                  << (options.hedging ? "on" : "off") << " — "
                  << hedges.hedgesSent << " sent, "
                  << hedges.hedgesWon << " won, "
                  << hedges.hedgesDenied << " budget-denied, "
                  << hedges.cancelsSent << " cancel(s)\n";
        printFailpointsLine();
    }

    serve::WorkloadMetrics totals = router.metrics().total();
    uint64_t forwarded = 0;
    std::ostringstream shards;
    bool first = true;
    for (const net::BackendStats &backend : router.backendStats()) {
        forwarded += backend.forwarded;
        shards << (first ? "" : ",") << backend.forwarded;
        first = false;
    }
    std::ostringstream json;
    json << "{\"mode\":\"route\",\"completed\":" << totals.completed
         << ",\"forwarded\":" << forwarded << ",\"per_backend\":["
         << shards.str() << "],\"shed\":" << totals.rejected()
         << ",\"hedges_sent\":" << hedges.hedgesSent
         << ",\"hedges_won\":" << hedges.hedgesWon
         << ",\"hedges_denied\":" << hedges.hedgesDenied
         << ",\"cancels\":" << hedges.cancelsSent
         << ",\"backends\":" << router.backendJson() << "}";
    bench::writeBenchJson(argc, argv, json.str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    workloads::registerAllWorkloads();
    // Arm failpoints from the environment before any subcommand runs;
    // --faults (when given) reconfigures over this.
    util::failpoints::configureFromEnv();
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];
    if (cmd == "list")
        return cmdList();
    if (cmd == "devices")
        return cmdDevices();
    if (cmd == "run")
        return cmdRun(argc - 2, argv + 2);
    if (cmd == "serve")
        return cmdServe(argc - 2, argv + 2, /*open_loop=*/false);
    if (cmd == "loadgen")
        return cmdServe(argc - 2, argv + 2, /*open_loop=*/true);
    if (cmd == "route")
        return cmdRoute(argc - 2, argv + 2);
    return usage();
}
